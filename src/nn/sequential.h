/**
 * @file
 * Sequential model container plus flat weight (de)serialization used by
 * the federated averaging server.
 */
#ifndef AUTOFL_NN_SEQUENTIAL_H
#define AUTOFL_NN_SEQUENTIAL_H

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace autofl {

/** Per-model structural profile consumed by the AutoFL state encoder. */
struct NnProfile
{
    std::string name;            ///< Workload name, e.g. "CNN-MNIST".
    int conv_layers = 0;         ///< Count of convolution layers (S_CONV).
    int fc_layers = 0;           ///< Count of fully-connected layers (S_FC).
    int rc_layers = 0;           ///< Count of recurrent layers (S_RC).
    double flops_per_sample = 0; ///< Forward FLOPs per training sample.
    double model_bytes = 0;      ///< Serialized weight payload size.
    double arithmetic_intensity = 0; ///< FLOPs per parameter byte touched.

    /**
     * Fraction of execution that is memory-bandwidth bound, derived from
     * the per-layer-kind FLOP mix (recurrent layers stream state and run
     * GEMV-shaped work; convolutions reuse weights heavily). Drives the
     * tier-gap narrowing the paper reports for RC-heavy models.
     */
    double mem_bound_frac = 0;
};

/** Ordered stack of layers behaving as one differentiable model. */
class Sequential
{
  public:
    Sequential() = default;

    // Models own their layers; moving is fine, copying is not.
    Sequential(const Sequential &) = delete;
    Sequential &operator=(const Sequential &) = delete;
    Sequential(Sequential &&) = default;
    Sequential &operator=(Sequential &&) = default;

    /** Append a layer (builder style). */
    Sequential &add(std::unique_ptr<Layer> layer);

    /** Convenience: construct the layer in place. */
    template <typename L, typename... Args>
    Sequential &
    emplace(Args &&...args)
    {
        return add(std::make_unique<L>(std::forward<Args>(args)...));
    }

    /** Initialize every layer's weights from the RNG. */
    void init_weights(Rng &rng);

    /** Forward through all layers (activations move layer to layer). */
    Tensor forward(Tensor x);

    /**
     * Inference-only forward: bit-identical to forward() on a given
     * arch variant, but no layer retains backward state (the serving
     * plane's entry point; backward() must not follow).
     */
    Tensor infer(Tensor x);

    /** Backward through all layers; returns input gradient. */
    Tensor backward(const Tensor &grad_out);

    /** Zero all parameter gradients. */
    void zero_grad();

    /** All parameter tensors in layer order. */
    std::vector<Tensor *> params();

    /** All gradient tensors in layer order. */
    std::vector<Tensor *> grads();

    /** Total number of scalar parameters. */
    size_t num_params() const;

    /** Copy all parameters into one flat vector (FL gradient payload). */
    std::vector<float> flat_weights() const;

    /** Load parameters from a flat vector produced by flat_weights(). */
    void set_flat_weights(const std::vector<float> &w);

    /**
     * Same, from a raw flat buffer of @p n floats — the zero-copy
     * entry point for weights that live outside a vector (an mmap'd
     * snapshot artifact). @p n must equal num_params() (asserted).
     */
    void set_flat_weights(const float *w, size_t n);

    /** Per-sample forward FLOPs for the given single-sample input shape. */
    double flops_per_sample(std::vector<int> in_shape) const;

    /** Structural profile (layer-kind counts, FLOPs, bytes). */
    NnProfile profile(const std::string &name,
                      const std::vector<int> &in_shape) const;

    /** Layer access for tests. */
    size_t num_layers() const { return layers_.size(); }
    Layer &layer(size_t i) { return *layers_[i]; }
    const Layer &layer(size_t i) const { return *layers_[i]; }

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

} // namespace autofl

#endif // AUTOFL_NN_SEQUENTIAL_H
