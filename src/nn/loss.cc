#include "loss.h"

#include <cassert>
#include <cmath>

namespace autofl {

double
SoftmaxCrossEntropy::forward(const Tensor &logits,
                             const std::vector<int> &labels)
{
    assert(logits.rank() == 2);
    const int batch = logits.dim(0), classes = logits.dim(1);
    assert(static_cast<int>(labels.size()) == batch);
    probs_ = Tensor({batch, classes});
    labels_ = labels;
    correct_ = 0;
    double loss = 0.0;
    for (int n = 0; n < batch; ++n) {
        float mx = logits.at2(n, 0);
        int arg = 0;
        for (int c = 1; c < classes; ++c) {
            if (logits.at2(n, c) > mx) {
                mx = logits.at2(n, c);
                arg = c;
            }
        }
        if (arg == labels[static_cast<size_t>(n)])
            ++correct_;
        double denom = 0.0;
        for (int c = 0; c < classes; ++c)
            denom += std::exp(static_cast<double>(logits.at2(n, c) - mx));
        const double log_denom = std::log(denom);
        for (int c = 0; c < classes; ++c) {
            probs_.at2(n, c) = static_cast<float>(
                std::exp(static_cast<double>(logits.at2(n, c) - mx)) / denom);
        }
        const int y = labels[static_cast<size_t>(n)];
        loss -= static_cast<double>(logits.at2(n, y) - mx) - log_denom;
    }
    return loss / batch;
}

Tensor
SoftmaxCrossEntropy::backward() const
{
    const int batch = probs_.dim(0), classes = probs_.dim(1);
    Tensor dlogits = probs_;
    const float inv = 1.0f / static_cast<float>(batch);
    for (int n = 0; n < batch; ++n) {
        dlogits.at2(n, labels_[static_cast<size_t>(n)]) -= 1.0f;
        for (int c = 0; c < classes; ++c)
            dlogits.at2(n, c) *= inv;
    }
    return dlogits;
}

std::vector<int>
argmax_rows(const Tensor &logits)
{
    assert(logits.rank() == 2);
    const int batch = logits.dim(0), classes = logits.dim(1);
    std::vector<int> out(static_cast<size_t>(batch));
    for (int n = 0; n < batch; ++n) {
        int arg = 0;
        float best = logits.at2(n, 0);
        for (int c = 1; c < classes; ++c) {
            if (logits.at2(n, c) > best) {
                best = logits.at2(n, c);
                arg = c;
            }
        }
        out[static_cast<size_t>(n)] = arg;
    }
    return out;
}

} // namespace autofl
