#include "dense.h"

#include <cmath>
#include <sstream>

namespace autofl {

Dense::Dense(int in, int out)
    : in_(in), out_(out),
      w_({in, out}), b_({out}), dw_({in, out}), db_({out})
{
}

void
Dense::init_weights(Rng &rng)
{
    // Glorot-uniform keeps both CNN heads and LSTM projections stable.
    const float limit = std::sqrt(6.0f / static_cast<float>(in_ + out_));
    for (size_t i = 0; i < w_.size(); ++i)
        w_[i] = static_cast<float>(rng.uniform(-limit, limit));
    b_.fill(0.0f);
}

Tensor
Dense::forward(const Tensor &x)
{
    assert(x.rank() == 2 && x.dim(1) == in_);
    x_cache_ = x;
    Tensor y = matmul(x, w_);
    const int batch = x.dim(0);
    for (int i = 0; i < batch; ++i)
        for (int j = 0; j < out_; ++j)
            y.at2(i, j) += b_[static_cast<size_t>(j)];
    return y;
}

Tensor
Dense::backward(const Tensor &grad_out)
{
    assert(grad_out.rank() == 2 && grad_out.dim(1) == out_);
    // dW += x^T dy ; db += column sums of dy ; dx = dy W^T.
    Tensor dw = matmul_tn(x_cache_, grad_out);
    dw_ += dw;
    const int batch = grad_out.dim(0);
    for (int i = 0; i < batch; ++i)
        for (int j = 0; j < out_; ++j)
            db_[static_cast<size_t>(j)] += grad_out.at2(i, j);
    return matmul_nt(grad_out, w_);
}

std::vector<int>
Dense::output_shape(const std::vector<int> &in) const
{
    assert(in.size() == 2 && in[1] == in_);
    return {in[0], out_};
}

double
Dense::flops_per_sample(const std::vector<int> &in) const
{
    (void)in;
    return 2.0 * in_ * out_;
}

std::string
Dense::name() const
{
    std::ostringstream os;
    os << "Dense(" << in_ << "->" << out_ << ")";
    return os.str();
}

} // namespace autofl
