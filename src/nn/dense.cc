#include "dense.h"

#include <cmath>
#include <sstream>

#include "kernels/kernels.h"

namespace autofl {

Dense::Dense(int in, int out)
    : in_(in), out_(out),
      w_({in, out}), b_({out}), dw_({in, out}), db_({out})
{
}

void
Dense::init_weights(Rng &rng)
{
    // Glorot-uniform keeps both CNN heads and LSTM projections stable.
    const float limit = std::sqrt(6.0f / static_cast<float>(in_ + out_));
    for (size_t i = 0; i < w_.size(); ++i)
        w_[i] = static_cast<float>(rng.uniform(-limit, limit));
    b_.fill(0.0f);
}

Tensor
Dense::forward(Tensor x)
{
    assert(x.rank() == 2 && x.dim(1) == in_);
    x_cache_ = std::move(x);  // Backward needs x for dW = x^T dy.
    return affine(x_cache_);
}

Tensor
Dense::infer(Tensor x)
{
    assert(x.rank() == 2 && x.dim(1) == in_);
    return affine(x);
}

Tensor
Dense::affine(const Tensor &x) const
{
    const int batch = x.dim(0);
    Tensor y({batch, out_});
    kernels::gemm(batch, out_, in_, x.data(), in_, w_.data(), out_,
                  y.data(), out_);
    kernels::add_bias_rows(batch, out_, b_.data(), y.data());
    return y;
}

Tensor
Dense::backward(const Tensor &grad_out)
{
    assert(grad_out.rank() == 2 && grad_out.dim(1) == out_);
    // dW += x^T dy ; db += column sums of dy ; dx = dy W^T.
    const int batch = grad_out.dim(0);
    kernels::gemm_tn(in_, out_, batch, x_cache_.data(), in_,
                     grad_out.data(), out_, dw_.data(), out_,
                     /*accumulate=*/true);
    kernels::accumulate_rows(batch, out_, grad_out.data(), db_.data());
    Tensor dx({batch, in_});
    kernels::gemm_nt(batch, in_, out_, grad_out.data(), out_, w_.data(),
                     out_, dx.data(), in_);
    return dx;
}

std::vector<int>
Dense::output_shape(const std::vector<int> &in) const
{
    assert(in.size() == 2 && in[1] == in_);
    return {in[0], out_};
}

double
Dense::flops_per_sample(const std::vector<int> &in) const
{
    (void)in;
    return 2.0 * in_ * out_;
}

std::string
Dense::name() const
{
    std::ostringstream os;
    os << "Dense(" << in_ << "->" << out_ << ")";
    return os.str();
}

} // namespace autofl
