/**
 * @file
 * Softmax cross-entropy loss with integer class labels.
 */
#ifndef AUTOFL_NN_LOSS_H
#define AUTOFL_NN_LOSS_H

#include <vector>

#include "tensor/tensor.h"

namespace autofl {

/**
 * Fused softmax + cross-entropy. forward() caches the probabilities so
 * backward() can produce the standard (p - onehot)/batch gradient.
 */
class SoftmaxCrossEntropy
{
  public:
    /**
     * @param logits {batch, classes} raw scores.
     * @param labels One class index per batch row.
     * @return Mean cross-entropy loss over the batch.
     */
    double forward(const Tensor &logits, const std::vector<int> &labels);

    /** Gradient of the mean loss w.r.t. the logits. */
    Tensor backward() const;

    /** Class probabilities from the last forward() call. */
    const Tensor &probs() const { return probs_; }

    /** Count of argmax-correct rows in the last forward() call. */
    int correct() const { return correct_; }

  private:
    Tensor probs_;
    std::vector<int> labels_;
    int correct_ = 0;
};

/** Argmax over each row of a {batch, classes} tensor. */
std::vector<int> argmax_rows(const Tensor &logits);

} // namespace autofl

#endif // AUTOFL_NN_LOSS_H
