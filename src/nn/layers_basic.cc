#include "layers_basic.h"

#include <limits>
#include <sstream>

#include "kernels/kernels.h"

namespace autofl {

Tensor
ReLU::forward(Tensor x)
{
    mask_.resize(x.size());
    kernels::relu_forward(x.size(), x.data(), mask_.data());
    return x;
}

Tensor
ReLU::infer(Tensor x)
{
    // max(x, 0) is exact, so skipping the mask changes no bits.
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = x[i] > 0.0f ? x[i] : 0.0f;
    return x;
}

Tensor
ReLU::backward(const Tensor &grad_out)
{
    assert(grad_out.size() == mask_.size());
    Tensor dx = grad_out;
    kernels::relu_backward(dx.size(), mask_.data(), dx.data());
    return dx;
}

std::vector<int>
ReLU::output_shape(const std::vector<int> &in) const
{
    return in;
}

double
ReLU::flops_per_sample(const std::vector<int> &in) const
{
    double n = 1.0;
    for (size_t i = 1; i < in.size(); ++i)
        n *= in[i];
    return n;
}

MaxPool2D::MaxPool2D(int k, int stride)
    : k_(k), stride_(stride > 0 ? stride : k)
{
}

Tensor
MaxPool2D::pool(const Tensor &x, size_t *argmax) const
{
    assert(x.rank() == 4);
    const int batch = x.dim(0), ch = x.dim(1), ih = x.dim(2), iw = x.dim(3);
    const int oh = out_size(ih), ow = out_size(iw);
    Tensor y({batch, ch, oh, ow});
    size_t out_idx = 0;
    for (int n = 0; n < batch; ++n) {
        for (int c = 0; c < ch; ++c) {
            for (int oy = 0; oy < oh; ++oy) {
                for (int ox = 0; ox < ow; ++ox, ++out_idx) {
                    float best = -std::numeric_limits<float>::infinity();
                    size_t best_idx = 0;
                    for (int ky = 0; ky < k_; ++ky) {
                        for (int kx = 0; kx < k_; ++kx) {
                            const int yy = oy * stride_ + ky;
                            const int xx = ox * stride_ + kx;
                            const size_t idx =
                                ((static_cast<size_t>(n) * ch + c) * ih + yy) *
                                    iw + xx;
                            if (x[idx] > best) {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    y[out_idx] = best;
                    if (argmax != nullptr)
                        argmax[out_idx] = best_idx;
                }
            }
        }
    }
    return y;
}

Tensor
MaxPool2D::forward(Tensor x)
{
    in_shape_ = x.shape();
    argmax_.assign(Tensor::shape_size(output_shape(in_shape_)), 0);
    return pool(x, argmax_.data());
}

Tensor
MaxPool2D::infer(Tensor x)
{
    return pool(x, nullptr);
}

Tensor
MaxPool2D::backward(const Tensor &grad_out)
{
    Tensor dx(in_shape_);
    assert(grad_out.size() == argmax_.size());
    for (size_t i = 0; i < grad_out.size(); ++i)
        dx[argmax_[i]] += grad_out[i];
    return dx;
}

std::vector<int>
MaxPool2D::output_shape(const std::vector<int> &in) const
{
    assert(in.size() == 4);
    return {in[0], in[1], out_size(in[2]), out_size(in[3])};
}

double
MaxPool2D::flops_per_sample(const std::vector<int> &in) const
{
    const int oh = out_size(in[2]), ow = out_size(in[3]);
    return static_cast<double>(in[1]) * oh * ow * k_ * k_;
}

std::string
MaxPool2D::name() const
{
    std::ostringstream os;
    os << "MaxPool2D(k=" << k_ << ", s=" << stride_ << ")";
    return os.str();
}

Tensor
GlobalAvgPool::forward(Tensor x)
{
    assert(x.rank() == 4);
    in_shape_ = x.shape();
    const int batch = x.dim(0), ch = x.dim(1), ih = x.dim(2), iw = x.dim(3);
    const float inv = 1.0f / static_cast<float>(ih * iw);
    Tensor y({batch, ch});
    for (int n = 0; n < batch; ++n) {
        for (int c = 0; c < ch; ++c) {
            float acc = 0.0f;
            for (int yy = 0; yy < ih; ++yy)
                for (int xx = 0; xx < iw; ++xx)
                    acc += x.at4(n, c, yy, xx);
            y.at2(n, c) = acc * inv;
        }
    }
    return y;
}

Tensor
GlobalAvgPool::backward(const Tensor &grad_out)
{
    Tensor dx(in_shape_);
    const int batch = in_shape_[0], ch = in_shape_[1];
    const int ih = in_shape_[2], iw = in_shape_[3];
    const float inv = 1.0f / static_cast<float>(ih * iw);
    for (int n = 0; n < batch; ++n) {
        for (int c = 0; c < ch; ++c) {
            const float g = grad_out.at2(n, c) * inv;
            for (int yy = 0; yy < ih; ++yy)
                for (int xx = 0; xx < iw; ++xx)
                    dx.at4(n, c, yy, xx) = g;
        }
    }
    return dx;
}

std::vector<int>
GlobalAvgPool::output_shape(const std::vector<int> &in) const
{
    assert(in.size() == 4);
    return {in[0], in[1]};
}

double
GlobalAvgPool::flops_per_sample(const std::vector<int> &in) const
{
    return static_cast<double>(in[1]) * in[2] * in[3];
}

Tensor
Flatten::forward(Tensor x)
{
    in_shape_ = x.shape();
    int feat = 1;
    for (int d = 1; d < x.rank(); ++d)
        feat *= x.dim(d);
    const int batch = x.dim(0);
    return std::move(x).reshaped({batch, feat});
}

Tensor
Flatten::backward(const Tensor &grad_out)
{
    return grad_out.reshaped(in_shape_);
}

std::vector<int>
Flatten::output_shape(const std::vector<int> &in) const
{
    int feat = 1;
    for (size_t d = 1; d < in.size(); ++d)
        feat *= in[d];
    return {in[0], feat};
}

double
Flatten::flops_per_sample(const std::vector<int> &in) const
{
    (void)in;
    return 0.0;
}

} // namespace autofl
