#include "sequential.h"

#include <cassert>

namespace autofl {

Sequential &
Sequential::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
    return *this;
}

void
Sequential::init_weights(Rng &rng)
{
    for (auto &l : layers_)
        l->init_weights(rng);
}

Tensor
Sequential::forward(Tensor x)
{
    for (auto &l : layers_)
        x = l->forward(std::move(x));
    return x;
}

Tensor
Sequential::infer(Tensor x)
{
    for (auto &l : layers_)
        x = l->infer(std::move(x));
    return x;
}

Tensor
Sequential::backward(const Tensor &grad_out)
{
    Tensor g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

void
Sequential::zero_grad()
{
    for (auto &l : layers_)
        l->zero_grad();
}

std::vector<Tensor *>
Sequential::params()
{
    std::vector<Tensor *> out;
    for (auto &l : layers_)
        for (Tensor *p : l->params())
            out.push_back(p);
    return out;
}

std::vector<Tensor *>
Sequential::grads()
{
    std::vector<Tensor *> out;
    for (auto &l : layers_)
        for (Tensor *g : l->grads())
            out.push_back(g);
    return out;
}

size_t
Sequential::num_params() const
{
    size_t n = 0;
    for (const auto &l : layers_)
        for (Tensor *p : const_cast<Layer &>(*l).params())
            n += p->size();
    return n;
}

std::vector<float>
Sequential::flat_weights() const
{
    std::vector<float> out;
    out.reserve(num_params());
    for (const auto &l : layers_) {
        for (Tensor *p : const_cast<Layer &>(*l).params())
            out.insert(out.end(), p->vec().begin(), p->vec().end());
    }
    return out;
}

void
Sequential::set_flat_weights(const std::vector<float> &w)
{
    set_flat_weights(w.data(), w.size());
}

void
Sequential::set_flat_weights(const float *w, size_t n)
{
    size_t off = 0;
    for (auto &l : layers_) {
        for (Tensor *p : l->params()) {
            assert(off + p->size() <= n);
            std::copy(w + off, w + off + p->size(), p->vec().begin());
            off += p->size();
        }
    }
    assert(off == n);
    (void)n;
}

double
Sequential::flops_per_sample(std::vector<int> in_shape) const
{
    double total = 0.0;
    for (const auto &l : layers_) {
        total += l->flops_per_sample(in_shape);
        in_shape = l->output_shape(in_shape);
    }
    return total;
}

NnProfile
Sequential::profile(const std::string &name,
                    const std::vector<int> &in_shape) const
{
    NnProfile p;
    p.name = name;
    // Per-kind memory-boundness weights: RC layers are GEMV-shaped and
    // stream recurrent state every timestep; FC layers touch each weight
    // once per sample; CONV layers reuse their small kernels across the
    // whole spatial extent.
    double weighted = 0.0;
    double total = 0.0;
    std::vector<int> shape = in_shape;
    for (const auto &l : layers_) {
        const double f = l->flops_per_sample(shape);
        shape = l->output_shape(shape);
        total += f;
        switch (l->kind()) {
          case LayerKind::Conv:
            ++p.conv_layers;
            weighted += 0.15 * f;
            break;
          case LayerKind::Fc:
            ++p.fc_layers;
            weighted += 0.45 * f;
            break;
          case LayerKind::Recurrent:
            ++p.rc_layers;
            weighted += 0.75 * f;
            break;
          case LayerKind::Other:
            weighted += 0.35 * f;
            break;
        }
    }
    p.mem_bound_frac = total > 0.0 ? weighted / total : 0.0;
    p.flops_per_sample = flops_per_sample(in_shape);
    p.model_bytes = static_cast<double>(num_params()) * sizeof(float);
    p.arithmetic_intensity =
        p.model_bytes > 0 ? p.flops_per_sample / p.model_bytes : 0.0;
    return p;
}

} // namespace autofl
