/**
 * @file
 * Stochastic gradient descent with optional momentum, weight decay and a
 * FedProx-style proximal term toward an anchor weight vector.
 */
#ifndef AUTOFL_NN_SGD_H
#define AUTOFL_NN_SGD_H

#include <vector>

#include "nn/sequential.h"

namespace autofl {

/** SGD optimizer bound to one model's parameter list. */
class Sgd
{
  public:
    /**
     * @param lr Learning rate.
     * @param momentum Momentum coefficient (0 disables).
     * @param weight_decay L2 coefficient (0 disables).
     */
    explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0);

    double lr() const { return lr_; }
    void set_lr(double lr) { lr_ = lr; }

    /**
     * Apply one update step to the model from its accumulated gradients.
     * Velocity buffers are lazily sized on first use.
     */
    void step(Sequential &model);

    /**
     * FedProx variant: adds mu * (w - anchor) to each gradient before the
     * update, pulling local weights toward the global model.
     * @param anchor Flat global weights (same layout as flat_weights()).
     * @param mu Proximal strength; 0 reduces to plain step().
     */
    void step_prox(Sequential &model, const std::vector<float> &anchor,
                   double mu);

    /** Drop velocity state (e.g. when a new round reloads weights). */
    void reset();

  private:
    double lr_;
    double momentum_;
    double weight_decay_;
    std::vector<std::vector<float>> velocity_;

    void ensure_velocity(Sequential &model);
};

} // namespace autofl

#endif // AUTOFL_NN_SGD_H
