/**
 * @file
 * Model zoo: the three FL workloads evaluated in the paper.
 *
 *  - CNN-MNIST: small conv net for 10-class image classification.
 *  - LSTM-Shakespeare: stacked LSTM for next-character prediction.
 *  - MobileNet-ImageNet: depthwise-separable conv net for 10-class
 *    image classification on the synthetic ImageNet stand-in.
 *
 * Input images are synthetic stand-ins with reduced resolution so the
 * whole 200-device FL simulation trains in seconds (see DESIGN.md for
 * the substitution rationale); the layer-type mix per workload matches
 * the paper's characterization (CONV/FC-dominant vs RC-dominant).
 */
#ifndef AUTOFL_NN_MODELS_H
#define AUTOFL_NN_MODELS_H

#include <string>
#include <vector>

#include "nn/sequential.h"

namespace autofl {

/** The three FL use cases from the paper's evaluation. */
enum class Workload {
    CnnMnist,
    LstmShakespeare,
    MobileNetImageNet,
};

/** Human-readable workload name as printed in the paper. */
std::string workload_name(Workload w);

/**
 * Inverse of workload_name (exact match). Returns true and sets @p out
 * on success; false for any other string. The model-registry manifest
 * records workload_name(), so registry consumers rebuild the
 * architecture through this.
 */
bool workload_from_name(const std::string &name, Workload *out);

/** All workloads, for sweeps. */
const std::vector<Workload> &all_workloads();

// Dataset geometry shared by the model builders and the data generators.
constexpr int kMnistSide = 12;      ///< Synthetic MNIST image side.
constexpr int kMnistClasses = 10;
constexpr int kImageNetSide = 12;   ///< Synthetic ImageNet image side.
constexpr int kImageNetChannels = 3;
constexpr int kImageNetClasses = 10;
constexpr int kTextVocab = 26;      ///< Synthetic Shakespeare vocabulary.
constexpr int kTextSeqLen = 8;      ///< Characters of context per sample.

/** Build the model for a workload (weights uninitialized). */
Sequential make_model(Workload w);

/**
 * Single-sample input shape for a workload with batch/time dims included
 * and batch set to 1 (e.g. {1, 1, 12, 12} for CNN-MNIST,
 * {seq, 1, vocab} for the LSTM).
 */
std::vector<int> model_input_shape(Workload w);

/** Input shape for a batch of @p batch samples. */
std::vector<int> model_batch_shape(Workload w, int batch);

/**
 * Which input dimension counts samples: 0 for the batch-major image
 * workloads, 1 for the LSTM's time-major {seq, batch, vocab} layout.
 * Output logits are {batch, classes} for every workload.
 */
int model_batch_axis(Workload w);

/** Number of output classes. */
int model_num_classes(Workload w);

/** Structural profile of the workload's model. */
NnProfile model_profile(Workload w);

} // namespace autofl

#endif // AUTOFL_NN_MODELS_H
