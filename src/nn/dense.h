/**
 * @file
 * Fully-connected layer: y = x W + b, for x of shape {batch, in}.
 */
#ifndef AUTOFL_NN_DENSE_H
#define AUTOFL_NN_DENSE_H

#include "nn/layer.h"

namespace autofl {

/** Fully-connected (affine) layer. */
class Dense : public Layer
{
  public:
    /**
     * @param in Input feature width.
     * @param out Output feature width.
     */
    Dense(int in, int out);

    Tensor forward(Tensor x) override;
    Tensor infer(Tensor x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Tensor *> params() override { return {&w_, &b_}; }
    std::vector<Tensor *> grads() override { return {&dw_, &db_}; }
    void init_weights(Rng &rng) override;
    std::vector<int> output_shape(const std::vector<int> &in) const override;
    double flops_per_sample(const std::vector<int> &in) const override;
    LayerKind kind() const override { return LayerKind::Fc; }
    std::string name() const override;

    int in_features() const { return in_; }
    int out_features() const { return out_; }

  private:
    int in_;
    int out_;
    Tensor w_;  ///< {in, out}
    Tensor b_;  ///< {out}
    Tensor dw_;
    Tensor db_;
    Tensor x_cache_;

    /** Shared x W + b body of forward() and infer(). */
    Tensor affine(const Tensor &x) const;
};

} // namespace autofl

#endif // AUTOFL_NN_DENSE_H
