#include "lstm.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "kernels/kernels.h"

namespace autofl {

Lstm::Lstm(int in, int hidden, bool return_sequences)
    : in_(in), hidden_(hidden), return_sequences_(return_sequences),
      wx_({in, 4 * hidden}), wh_({hidden, 4 * hidden}), b_({4 * hidden}),
      dwx_({in, 4 * hidden}), dwh_({hidden, 4 * hidden}), db_({4 * hidden})
{
}

void
Lstm::init_weights(Rng &rng)
{
    const float lim_x = std::sqrt(6.0f / static_cast<float>(in_ + 4 * hidden_));
    for (size_t i = 0; i < wx_.size(); ++i)
        wx_[i] = static_cast<float>(rng.uniform(-lim_x, lim_x));
    const float lim_h =
        std::sqrt(6.0f / static_cast<float>(hidden_ + 4 * hidden_));
    for (size_t i = 0; i < wh_.size(); ++i)
        wh_[i] = static_cast<float>(rng.uniform(-lim_h, lim_h));
    b_.fill(0.0f);
    // Forget-gate bias of 1 is the standard trick for gradient flow.
    for (int j = hidden_; j < 2 * hidden_; ++j)
        b_[static_cast<size_t>(j)] = 1.0f;
}

void
Lstm::pack_weights()
{
    const int h4 = 4 * hidden_;
    if (wcat_.empty())
        wcat_ = Tensor({in_ + hidden_, h4});
    std::memcpy(wcat_.data(), wx_.data(), sizeof(float) * wx_.size());
    std::memcpy(wcat_.data() + wx_.size(), wh_.data(),
                sizeof(float) * wh_.size());
}

Tensor
Lstm::forward(Tensor x)
{
    assert(x.rank() == 3 && x.dim(2) == in_);
    const int time = x.dim(0), batch = x.dim(1);
    const int h4 = 4 * hidden_;
    const int xh = in_ + hidden_;
    pack_weights();

    xhs_.assign(static_cast<size_t>(time), Tensor({batch, xh}));
    gates_.assign(static_cast<size_t>(time), Tensor());
    cs_.assign(static_cast<size_t>(time) + 1, Tensor({batch, hidden_}));

    // W is shared by every timestep: pack its panels once and reuse
    // them across the whole sequence. infer() packs identically, so
    // the two stay on the same GEMM path (and bit-identical).
    const kernels::PackedGemm wp =
        kernels::pack_gemm_b(xh, h4, wcat_.data(), h4);

    Tensor out_seq;
    if (return_sequences_)
        out_seq = Tensor({time, batch, hidden_});
    else
        h_last_ = Tensor({batch, hidden_});

    for (int t = 0; t < time; ++t) {
        // Pack [x_t | h_{t-1}]: the x slice is copied in here; the h
        // part was written by the previous step's gate kernel (zeros
        // from construction at t = 0).
        Tensor &xht = xhs_[static_cast<size_t>(t)];
        const float *xt = x.data() + static_cast<size_t>(t) * batch * in_;
        for (int n = 0; n < batch; ++n)
            std::memcpy(xht.data() + static_cast<size_t>(n) * xh,
                        xt + static_cast<size_t>(n) * in_,
                        sizeof(float) * static_cast<size_t>(in_));

        // One fused GEMM: all four gates, input + recurrent projections.
        Tensor z({batch, h4});
        kernels::gemm_packed_b(batch, xht.data(), xh, wp, z.data(), h4);
        kernels::add_bias_rows(batch, h4, b_.data(), z.data());

        // Fused gate activation + cell update: [i | f | g | o] in
        // place; h lands either in the next step's packed buffer, the
        // sequence output, or the final-h tensor.
        const bool last = t + 1 == time;
        float *h_dst;
        int h_stride;
        if (return_sequences_) {
            h_dst = out_seq.data() +
                static_cast<size_t>(t) * batch * hidden_;
            h_stride = hidden_;
        } else if (last) {
            h_dst = h_last_.data();
            h_stride = hidden_;
        } else {
            h_dst = xhs_[static_cast<size_t>(t) + 1].data() + in_;
            h_stride = xh;
        }
        kernels::lstm_gate_forward(batch, hidden_, z.data(),
                                   cs_[static_cast<size_t>(t)].data(),
                                   cs_[static_cast<size_t>(t) + 1].data(),
                                   h_dst, h_stride);
        if (return_sequences_ && !last) {
            // Mirror h into the next step's packed buffer.
            float *next = xhs_[static_cast<size_t>(t) + 1].data() + in_;
            for (int n = 0; n < batch; ++n)
                std::memcpy(next + static_cast<size_t>(n) * xh,
                            h_dst + static_cast<size_t>(n) * hidden_,
                            sizeof(float) * static_cast<size_t>(hidden_));
        }
        gates_[static_cast<size_t>(t)] = std::move(z);
    }
    if (return_sequences_)
        return out_seq;
    return h_last_;
}

Tensor
Lstm::infer(Tensor x)
{
    assert(x.rank() == 3 && x.dim(2) == in_);
    const int time = x.dim(0), batch = x.dim(1);
    const int h4 = 4 * hidden_;
    const int xh = in_ + hidden_;
    pack_weights();

    // Rolling state instead of the per-timestep BPTT caches: one packed
    // [x_t | h_{t-1}] buffer whose h columns each step overwrites in
    // place, and a ping-ponged cell-state pair. Same kernels in the
    // same order as forward(), so the output is bit-identical.
    Tensor xht({batch, xh});
    Tensor z({batch, h4});
    Tensor c_prev({batch, hidden_});
    Tensor c({batch, hidden_});
    const kernels::PackedGemm wp =
        kernels::pack_gemm_b(xh, h4, wcat_.data(), h4);

    Tensor out_seq;
    Tensor h_last;
    if (return_sequences_)
        out_seq = Tensor({time, batch, hidden_});
    else
        h_last = Tensor({batch, hidden_});

    for (int t = 0; t < time; ++t) {
        const float *xt = x.data() + static_cast<size_t>(t) * batch * in_;
        for (int n = 0; n < batch; ++n)
            std::memcpy(xht.data() + static_cast<size_t>(n) * xh,
                        xt + static_cast<size_t>(n) * in_,
                        sizeof(float) * static_cast<size_t>(in_));

        kernels::gemm_packed_b(batch, xht.data(), xh, wp, z.data(), h4);
        kernels::add_bias_rows(batch, h4, b_.data(), z.data());

        const bool last = t + 1 == time;
        float *h_dst;
        int h_stride;
        if (return_sequences_) {
            h_dst = out_seq.data() +
                static_cast<size_t>(t) * batch * hidden_;
            h_stride = hidden_;
        } else if (last) {
            h_dst = h_last.data();
            h_stride = hidden_;
        } else {
            h_dst = xht.data() + in_;
            h_stride = xh;
        }
        kernels::lstm_gate_infer(batch, hidden_, z.data(), c_prev.data(),
                                 c.data(), h_dst, h_stride);
        if (return_sequences_ && !last) {
            float *next = xht.data() + in_;
            for (int n = 0; n < batch; ++n)
                std::memcpy(next + static_cast<size_t>(n) * xh,
                            h_dst + static_cast<size_t>(n) * hidden_,
                            sizeof(float) * static_cast<size_t>(hidden_));
        }
        std::swap(c_prev, c);
    }
    if (return_sequences_)
        return out_seq;
    return h_last;
}

Tensor
Lstm::backward(const Tensor &grad_out)
{
    const int time = static_cast<int>(xhs_.size());
    assert(time > 0);
    const int batch = xhs_[0].dim(0);
    const int h4 = 4 * hidden_;
    const int xh = in_ + hidden_;

    Tensor dx({time, batch, in_});
    Tensor dh({batch, hidden_});
    Tensor dc({batch, hidden_});
    Tensor dz({batch, h4});
    Tensor dxh({batch, xh});
    Tensor dc_prev({batch, hidden_});
    // Packed [dWx; dWh] accumulated across timesteps by the GEMM
    // itself, split back into the parameter gradients at the end.
    Tensor dwcat({xh, h4});
    // The dxh GEMM multiplies against W^T every timestep; gather the
    // transposed panels once for the whole BPTT sweep. (The dwcat
    // gemm_tn has no constant operand — both sides change per t.)
    const kernels::PackedGemm wpt =
        kernels::pack_gemm_b(h4, xh, wcat_.data(), h4, /*b_transposed=*/true);

    if (!return_sequences_) {
        assert(grad_out.rank() == 2 && grad_out.dim(1) == hidden_);
        dh = grad_out;
    }

    for (int t = time - 1; t >= 0; --t) {
        if (return_sequences_) {
            // Add the per-timestep gradient slice to the recurrent flow.
            kernels::vadd(dh.size(),
                          grad_out.data() +
                              static_cast<size_t>(t) * batch * hidden_,
                          dh.data());
        }
        const Tensor &z = gates_[static_cast<size_t>(t)];
        kernels::lstm_gate_backward(
            batch, hidden_, z.data(), cs_[static_cast<size_t>(t)].data(),
            cs_[static_cast<size_t>(t) + 1].data(), dh.data(), dc.data(),
            dz.data(), dc_prev.data());

        // Parameter gradients: one fused GEMM accumulates both dWx and
        // dWh rows; db gets the dz column sums.
        const Tensor &xht = xhs_[static_cast<size_t>(t)];
        kernels::gemm_tn(xh, h4, batch, xht.data(), xh, dz.data(), h4,
                         dwcat.data(), h4, /*accumulate=*/true);
        kernels::accumulate_rows(batch, h4, dz.data(), db_.data());

        // [dx_t | dh_{t-1}] in one fused GEMM against the packed W.
        kernels::gemm_packed_b(batch, dz.data(), h4, wpt, dxh.data(), xh);
        float *dxt = dx.data() + static_cast<size_t>(t) * batch * in_;
        for (int n = 0; n < batch; ++n) {
            const float *row = dxh.data() + static_cast<size_t>(n) * xh;
            std::memcpy(dxt + static_cast<size_t>(n) * in_, row,
                        sizeof(float) * static_cast<size_t>(in_));
            std::memcpy(dh.data() + static_cast<size_t>(n) * hidden_,
                        row + in_,
                        sizeof(float) * static_cast<size_t>(hidden_));
        }
        std::swap(dc, dc_prev);
    }

    // Split the packed weight gradient back into dWx / dWh.
    kernels::vadd(dwx_.size(), dwcat.data(), dwx_.data());
    kernels::vadd(dwh_.size(), dwcat.data() + dwx_.size(), dwh_.data());
    return dx;
}

std::vector<int>
Lstm::output_shape(const std::vector<int> &in) const
{
    assert(in.size() == 3 && in[2] == in_);
    if (return_sequences_)
        return {in[0], in[1], hidden_};
    return {in[1], hidden_};
}

double
Lstm::flops_per_sample(const std::vector<int> &in) const
{
    // Per timestep: two GEMVs into the 4H gate block plus pointwise work.
    const double per_step = 2.0 * (in_ + hidden_) * 4.0 * hidden_ +
        10.0 * hidden_;
    return per_step * in[0];
}

std::string
Lstm::name() const
{
    std::ostringstream os;
    os << "Lstm(" << in_ << "->" << hidden_
       << (return_sequences_ ? ", seq" : "") << ")";
    return os.str();
}

} // namespace autofl
