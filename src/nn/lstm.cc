#include "lstm.h"

#include <cmath>
#include <sstream>

namespace autofl {

namespace {

inline float
sigmoidf(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

Lstm::Lstm(int in, int hidden, bool return_sequences)
    : in_(in), hidden_(hidden), return_sequences_(return_sequences),
      wx_({in, 4 * hidden}), wh_({hidden, 4 * hidden}), b_({4 * hidden}),
      dwx_({in, 4 * hidden}), dwh_({hidden, 4 * hidden}), db_({4 * hidden})
{
}

void
Lstm::init_weights(Rng &rng)
{
    const float lim_x = std::sqrt(6.0f / static_cast<float>(in_ + 4 * hidden_));
    for (size_t i = 0; i < wx_.size(); ++i)
        wx_[i] = static_cast<float>(rng.uniform(-lim_x, lim_x));
    const float lim_h =
        std::sqrt(6.0f / static_cast<float>(hidden_ + 4 * hidden_));
    for (size_t i = 0; i < wh_.size(); ++i)
        wh_[i] = static_cast<float>(rng.uniform(-lim_h, lim_h));
    b_.fill(0.0f);
    // Forget-gate bias of 1 is the standard trick for gradient flow.
    for (int j = hidden_; j < 2 * hidden_; ++j)
        b_[static_cast<size_t>(j)] = 1.0f;
}

Tensor
Lstm::forward(const Tensor &x)
{
    assert(x.rank() == 3 && x.dim(2) == in_);
    const int time = x.dim(0), batch = x.dim(1);
    const int h4 = 4 * hidden_;

    xs_.assign(static_cast<size_t>(time), Tensor());
    gates_.assign(static_cast<size_t>(time), Tensor());
    hs_.assign(static_cast<size_t>(time) + 1, Tensor({batch, hidden_}));
    cs_.assign(static_cast<size_t>(time) + 1, Tensor({batch, hidden_}));

    Tensor out_seq;
    if (return_sequences_)
        out_seq = Tensor({time, batch, hidden_});

    for (int t = 0; t < time; ++t) {
        // Slice x_t {batch, in} out of the {time, batch, in} tensor.
        Tensor xt({batch, in_});
        const size_t base = static_cast<size_t>(t) * batch * in_;
        std::copy(x.data() + base, x.data() + base + xt.size(), xt.data());
        xs_[static_cast<size_t>(t)] = xt;

        Tensor z = matmul(xt, wx_);
        Tensor zh = matmul(hs_[static_cast<size_t>(t)], wh_);
        z += zh;
        for (int n = 0; n < batch; ++n)
            for (int j = 0; j < h4; ++j)
                z.at2(n, j) += b_[static_cast<size_t>(j)];

        // Activate gates in-place: [i | f | g | o].
        Tensor &ht = hs_[static_cast<size_t>(t) + 1];
        Tensor &ct = cs_[static_cast<size_t>(t) + 1];
        const Tensor &cprev = cs_[static_cast<size_t>(t)];
        for (int n = 0; n < batch; ++n) {
            for (int j = 0; j < hidden_; ++j) {
                float &zi = z.at2(n, j);
                float &zf = z.at2(n, hidden_ + j);
                float &zg = z.at2(n, 2 * hidden_ + j);
                float &zo = z.at2(n, 3 * hidden_ + j);
                zi = sigmoidf(zi);
                zf = sigmoidf(zf);
                zg = std::tanh(zg);
                zo = sigmoidf(zo);
                const float c = zf * cprev.at2(n, j) + zi * zg;
                ct.at2(n, j) = c;
                ht.at2(n, j) = zo * std::tanh(c);
            }
        }
        gates_[static_cast<size_t>(t)] = z;

        if (return_sequences_) {
            const size_t obase = static_cast<size_t>(t) * batch * hidden_;
            std::copy(ht.data(), ht.data() + ht.size(),
                      out_seq.data() + obase);
        }
    }
    if (return_sequences_)
        return out_seq;
    return hs_.back();
}

Tensor
Lstm::backward(const Tensor &grad_out)
{
    const int time = static_cast<int>(xs_.size());
    assert(time > 0);
    const int batch = xs_[0].dim(0);

    Tensor dx({time, batch, in_});
    Tensor dh({batch, hidden_});
    Tensor dc({batch, hidden_});

    if (!return_sequences_) {
        assert(grad_out.rank() == 2 && grad_out.dim(1) == hidden_);
        dh = grad_out;
    }

    for (int t = time - 1; t >= 0; --t) {
        if (return_sequences_) {
            // Add the per-timestep gradient slice to the recurrent flow.
            const size_t gbase = static_cast<size_t>(t) * batch * hidden_;
            for (size_t i = 0; i < dh.size(); ++i)
                dh[i] += grad_out[gbase + i];
        }
        const Tensor &z = gates_[static_cast<size_t>(t)];
        const Tensor &cprev = cs_[static_cast<size_t>(t)];
        const Tensor &ct = cs_[static_cast<size_t>(t) + 1];

        Tensor dz({batch, 4 * hidden_});
        Tensor dc_prev({batch, hidden_});
        for (int n = 0; n < batch; ++n) {
            for (int j = 0; j < hidden_; ++j) {
                const float i_g = z.at2(n, j);
                const float f_g = z.at2(n, hidden_ + j);
                const float g_g = z.at2(n, 2 * hidden_ + j);
                const float o_g = z.at2(n, 3 * hidden_ + j);
                const float tc = std::tanh(ct.at2(n, j));
                const float dht = dh.at2(n, j);

                const float dct = dht * o_g * (1.0f - tc * tc) + dc.at2(n, j);
                const float d_o = dht * tc;
                const float d_i = dct * g_g;
                const float d_g = dct * i_g;
                const float d_f = dct * cprev.at2(n, j);
                dc_prev.at2(n, j) = dct * f_g;

                dz.at2(n, j) = d_i * i_g * (1.0f - i_g);
                dz.at2(n, hidden_ + j) = d_f * f_g * (1.0f - f_g);
                dz.at2(n, 2 * hidden_ + j) = d_g * (1.0f - g_g * g_g);
                dz.at2(n, 3 * hidden_ + j) = d_o * o_g * (1.0f - o_g);
            }
        }

        // Parameter gradients accumulate across timesteps.
        dwx_ += matmul_tn(xs_[static_cast<size_t>(t)], dz);
        dwh_ += matmul_tn(hs_[static_cast<size_t>(t)], dz);
        for (int n = 0; n < batch; ++n)
            for (int j = 0; j < 4 * hidden_; ++j)
                db_[static_cast<size_t>(j)] += dz.at2(n, j);

        // Input and recurrent gradients.
        Tensor dxt = matmul_nt(dz, wx_);
        const size_t base = static_cast<size_t>(t) * batch * in_;
        std::copy(dxt.data(), dxt.data() + dxt.size(), dx.data() + base);
        dh = matmul_nt(dz, wh_);
        dc = dc_prev;
    }
    return dx;
}

std::vector<int>
Lstm::output_shape(const std::vector<int> &in) const
{
    assert(in.size() == 3 && in[2] == in_);
    if (return_sequences_)
        return {in[0], in[1], hidden_};
    return {in[1], hidden_};
}

double
Lstm::flops_per_sample(const std::vector<int> &in) const
{
    // Per timestep: two GEMVs into the 4H gate block plus pointwise work.
    const double per_step = 2.0 * (in_ + hidden_) * 4.0 * hidden_ +
        10.0 * hidden_;
    return per_step * in[0];
}

std::string
Lstm::name() const
{
    std::ostringstream os;
    os << "Lstm(" << in_ << "->" << hidden_
       << (return_sequences_ ? ", seq" : "") << ")";
    return os.str();
}

} // namespace autofl
