/**
 * @file
 * 2-D convolution with stride, zero padding and channel groups,
 * computed as im2col + GEMM through the kernel-dispatch backend.
 *
 * Groups support both regular convolution (groups = 1) and the depthwise
 * convolutions used by the MobileNet-style model (groups = in_channels).
 * Per (sample, group) the forward pass unfolds the input into a column
 * buffer and runs one GEMM against the {out_ch/g, in_ch/g * k * k}
 * weight view (bias pre-filled, GEMM accumulating on top — the same
 * reduction order as the original direct loops). 1x1/stride-1/no-pad
 * convolutions skip the unfold and multiply the input directly.
 * Backward recomputes the column buffer (cheaper than caching the k^2x
 * blow-up) for dW and folds the W^T dy product back with col2im.
 */
#ifndef AUTOFL_NN_CONV2D_H
#define AUTOFL_NN_CONV2D_H

#include "kernels/kernels.h"
#include "nn/layer.h"

namespace autofl {

/** Grouped 2-D convolution over {batch, channels, h, w} tensors. */
class Conv2D : public Layer
{
  public:
    /**
     * @param in_ch Input channels.
     * @param out_ch Output channels (must be divisible by @p groups).
     * @param kernel Square kernel size.
     * @param stride Stride in both dimensions.
     * @param pad Zero padding in both dimensions.
     * @param groups Channel groups; in_ch and out_ch must divide evenly.
     */
    Conv2D(int in_ch, int out_ch, int kernel, int stride = 1, int pad = 0,
           int groups = 1);

    Tensor forward(Tensor x) override;
    Tensor infer(Tensor x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Tensor *> params() override { return {&w_, &b_}; }
    std::vector<Tensor *> grads() override { return {&dw_, &db_}; }
    void init_weights(Rng &rng) override;
    std::vector<int> output_shape(const std::vector<int> &in) const override;
    double flops_per_sample(const std::vector<int> &in) const override;
    LayerKind kind() const override { return LayerKind::Conv; }
    std::string name() const override;

  private:
    int in_ch_, out_ch_, k_, stride_, pad_, groups_;
    Tensor w_;  ///< {out_ch, in_ch/groups, k, k}
    Tensor b_;  ///< {out_ch}
    Tensor dw_;
    Tensor db_;
    Tensor x_cache_;   ///< Moved-in input (backward re-unfolds it).
    AlignedFloatVec col_;   ///< im2col scratch, reused across samples.
    AlignedFloatVec dcol_;  ///< Backward column-gradient scratch.
    AlignedFloatVec colw_;  ///< Batch-wide column buffer (infer only).
    AlignedFloatVec outw_;  ///< Batch-wide output buffer (infer only).

    /** Shared im2col + GEMM body of forward() and infer(batch == 1). */
    Tensor convolve(const Tensor &xin);

    /** Whether im2col is the identity (pointwise convolution). */
    bool pointwise() const
    {
        return k_ == 1 && stride_ == 1 && pad_ == 0;
    }

    /**
     * Output spatial size for input spatial size @p s. Delegates to the
     * kernel layer's formula so the layer and im2col/col2im can never
     * disagree about the column-buffer geometry.
     */
    int out_size(int s) const
    {
        return kernels::conv_out_size(s, k_, stride_, pad_);
    }
};

} // namespace autofl

#endif // AUTOFL_NN_CONV2D_H
