#include "models.h"

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/layers_basic.h"
#include "nn/lstm.h"

namespace autofl {

std::string
workload_name(Workload w)
{
    switch (w) {
      case Workload::CnnMnist:
        return "CNN-MNIST";
      case Workload::LstmShakespeare:
        return "LSTM-Shakespeare";
      case Workload::MobileNetImageNet:
        return "MobileNet-ImageNet";
    }
    return "unknown";
}

bool
workload_from_name(const std::string &name, Workload *out)
{
    for (Workload w : all_workloads()) {
        if (workload_name(w) == name) {
            *out = w;
            return true;
        }
    }
    return false;
}

const std::vector<Workload> &
all_workloads()
{
    static const std::vector<Workload> kAll = {
        Workload::CnnMnist,
        Workload::LstmShakespeare,
        Workload::MobileNetImageNet,
    };
    return kAll;
}

namespace {

Sequential
make_cnn_mnist()
{
    Sequential m;
    m.emplace<Conv2D>(1, 8, 3, 1, 1);
    m.emplace<ReLU>();
    m.emplace<MaxPool2D>(2);
    m.emplace<Conv2D>(8, 16, 3, 1, 1);
    m.emplace<ReLU>();
    m.emplace<MaxPool2D>(2);
    m.emplace<Flatten>();
    m.emplace<Dense>(16 * (kMnistSide / 4) * (kMnistSide / 4), 32);
    m.emplace<ReLU>();
    m.emplace<Dense>(32, kMnistClasses);
    return m;
}

Sequential
make_lstm_shakespeare()
{
    Sequential m;
    m.emplace<Lstm>(kTextVocab, 48, /*return_sequences=*/true);
    m.emplace<Lstm>(48, 48, /*return_sequences=*/false);
    m.emplace<Dense>(48, kTextVocab);
    return m;
}

/** Depthwise-separable block: dw 3x3 + pw 1x1, each followed by ReLU. */
void
add_separable_block(Sequential &m, int in_ch, int out_ch)
{
    m.emplace<Conv2D>(in_ch, in_ch, 3, 1, 1, /*groups=*/in_ch);
    m.emplace<ReLU>();
    m.emplace<Conv2D>(in_ch, out_ch, 1);
    m.emplace<ReLU>();
}

Sequential
make_mobilenet_imagenet()
{
    Sequential m;
    m.emplace<Conv2D>(kImageNetChannels, 8, 3, 1, 1);
    m.emplace<ReLU>();
    add_separable_block(m, 8, 16);
    m.emplace<MaxPool2D>(2);
    add_separable_block(m, 16, 24);
    add_separable_block(m, 24, 32);
    m.emplace<MaxPool2D>(2);
    add_separable_block(m, 32, 32);
    add_separable_block(m, 32, 48);
    m.emplace<GlobalAvgPool>();
    m.emplace<Dense>(48, kImageNetClasses);
    return m;
}

} // namespace

Sequential
make_model(Workload w)
{
    switch (w) {
      case Workload::CnnMnist:
        return make_cnn_mnist();
      case Workload::LstmShakespeare:
        return make_lstm_shakespeare();
      case Workload::MobileNetImageNet:
        return make_mobilenet_imagenet();
    }
    return Sequential();
}

std::vector<int>
model_input_shape(Workload w)
{
    return model_batch_shape(w, 1);
}

std::vector<int>
model_batch_shape(Workload w, int batch)
{
    switch (w) {
      case Workload::CnnMnist:
        return {batch, 1, kMnistSide, kMnistSide};
      case Workload::LstmShakespeare:
        return {kTextSeqLen, batch, kTextVocab};
      case Workload::MobileNetImageNet:
        return {batch, kImageNetChannels, kImageNetSide, kImageNetSide};
    }
    return {};
}

int
model_batch_axis(Workload w)
{
    return w == Workload::LstmShakespeare ? 1 : 0;
}

int
model_num_classes(Workload w)
{
    switch (w) {
      case Workload::CnnMnist:
        return kMnistClasses;
      case Workload::LstmShakespeare:
        return kTextVocab;
      case Workload::MobileNetImageNet:
        return kImageNetClasses;
    }
    return 0;
}

NnProfile
model_profile(Workload w)
{
    Sequential m = make_model(w);
    return m.profile(workload_name(w), model_input_shape(w));
}

} // namespace autofl
