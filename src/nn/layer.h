/**
 * @file
 * Layer interface for the from-scratch NN library.
 *
 * Layers are stateful: forward() caches whatever backward() needs, so a
 * backward() call must follow the matching forward() (standard training
 * loop usage). Parameters and their gradients are exposed as flat lists
 * of Tensor pointers for the optimizer and for FL weight serialization.
 */
#ifndef AUTOFL_NN_LAYER_H
#define AUTOFL_NN_LAYER_H

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace autofl {

/** Coarse layer kind used to build the paper's NN-feature state (Table 1). */
enum class LayerKind {
    Conv,      ///< Convolution layer (counts toward S_CONV).
    Fc,        ///< Fully-connected layer (counts toward S_FC).
    Recurrent, ///< Recurrent layer (counts toward S_RC).
    Other,     ///< Activation / pooling / reshape (not counted).
};

/** Abstract differentiable layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Run the layer on a batch; caches activations for backward().
     * Takes the input by value: callers that are done with the
     * activation move it in, and layers move it into their backward
     * cache (or transform it in place) instead of deep-copying.
     */
    virtual Tensor forward(Tensor x) = 0;

    /**
     * Inference-only forward: numerically identical to forward() (same
     * kernels, same reduction order — bit-identical output on any
     * given arch variant) but skips the backward caches, so it never
     * grows per-layer state with the batch and may not be followed by
     * backward(). The serving plane (src/serve/) runs models through
     * this path. The default delegates to forward(); layers with
     * non-trivial caches override it.
     */
    virtual Tensor
    infer(Tensor x)
    {
        return forward(std::move(x));
    }

    /**
     * Back-propagate.
     * @param grad_out Gradient of the loss w.r.t. this layer's output.
     * @return Gradient of the loss w.r.t. this layer's input.
     */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Trainable parameter tensors (possibly empty). */
    virtual std::vector<Tensor *> params() { return {}; }

    /** Gradient tensors, parallel to params(). */
    virtual std::vector<Tensor *> grads() { return {}; }

    /** Randomize parameters (He/Glorot-style per layer). */
    virtual void init_weights(Rng &rng) { (void)rng; }

    /** Zero all gradient tensors. */
    void
    zero_grad()
    {
        for (Tensor *g : grads())
            g->fill(0.0f);
    }

    /** Output shape for a given input shape (batch dim included). */
    virtual std::vector<int> output_shape(const std::vector<int> &in) const = 0;

    /**
     * Forward FLOPs for one sample of the given input shape. The simulator
     * multiplies by ~3x for forward+backward training cost.
     */
    virtual double flops_per_sample(const std::vector<int> &in) const = 0;

    /** Coarse kind for NN-feature extraction. */
    virtual LayerKind kind() const { return LayerKind::Other; }

    /** Human-readable name for debugging. */
    virtual std::string name() const = 0;
};

} // namespace autofl

#endif // AUTOFL_NN_LAYER_H
