/** @file AutoFlScheduler behavioral tests (Algorithm 1). */
#include <gtest/gtest.h>

#include "core/autofl.h"
#include "nn/models.h"
#include "sim/round.h"

namespace autofl {
namespace {

GlobalObservation
cnn_observation()
{
    GlobalObservation g;
    g.profile = model_profile(Workload::CnnMnist);
    g.params = {16, 5, 20};
    return g;
}

std::vector<LocalObservation>
quiet_locals(const Fleet &fleet)
{
    std::vector<LocalObservation> locals(static_cast<size_t>(fleet.size()));
    for (auto &l : locals) {
        l.state.bandwidth_mbps = 80.0;
        l.data_classes = 10;
        l.total_classes = 10;
    }
    return locals;
}

TEST(AutoFlScheduler, SelectsExactlyK)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 21);
    AutoFlScheduler sched(fleet, AutoFlConfig{});
    auto plans = sched.select(cnn_observation(), quiet_locals(fleet), 20);
    EXPECT_EQ(plans.size(), 20u);
    // No duplicate devices.
    std::set<int> ids;
    for (const auto &p : plans)
        ids.insert(p.device_id);
    EXPECT_EQ(ids.size(), 20u);
}

TEST(AutoFlScheduler, ZeroEpsilonIsDeterministicGreedy)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 22);
    AutoFlConfig cfg;
    cfg.epsilon = 0.0;
    AutoFlScheduler a(fleet, cfg), b(fleet, cfg);
    auto pa = a.select(cnn_observation(), quiet_locals(fleet), 10);
    auto pb = b.select(cnn_observation(), quiet_locals(fleet), 10);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i].device_id, pb[i].device_id);
        EXPECT_EQ(pa[i].target, pb[i].target);
    }
}

/**
 * Reward-shaping learning test: devices with high co-running load are
 * made expensive (their selection yields low reward); the scheduler must
 * learn to avoid them.
 */
TEST(AutoFlScheduler, LearnsToAvoidPenalizedDevices)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 23);
    AutoFlConfig cfg;
    cfg.epsilon = 0.15;
    cfg.seed = 7;
    AutoFlScheduler sched(fleet, cfg);
    GlobalObservation gobs = cnn_observation();

    // Devices 0..99 are "bad" (high interference state).
    auto locals = quiet_locals(fleet);
    for (int d = 0; d < 100; ++d) {
        locals[static_cast<size_t>(d)].state.co_cpu_util = 0.9;
        locals[static_cast<size_t>(d)].state.co_mem_util = 0.9;
    }

    double acc = 50.0;
    for (int round = 0; round < 120; ++round) {
        auto plans = sched.select(gobs, locals, 20);
        // Build a synthetic outcome: picking bad devices costs energy.
        RoundExec exec;
        exec.round_s = 1.0;
        int bad = 0;
        for (const auto &p : plans) {
            DeviceExec e;
            e.device_id = p.device_id;
            e.comp_s = 1.0;
            const bool is_bad = p.device_id < 100;
            if (is_bad)
                ++bad;
            e.comp_j = is_bad ? 20.0 : 1.0;
            exec.participants.push_back(e);
            exec.energy_participants_j += e.energy_j();
        }
        exec.energy_idle_fleet_j = 10.0;
        exec.work_flops = 1.0;
        acc += 0.2;  // Accuracy keeps improving slightly.
        sched.observe_outcome(exec, acc);
    }

    // After learning, a greedy selection should avoid the bad devices.
    sched.set_epsilon(0.0);
    auto plans = sched.select(gobs, locals, 20);
    int bad = 0;
    for (const auto &p : plans)
        if (p.device_id < 100)
            ++bad;
    EXPECT_LE(bad, 5) << "scheduler still selects penalized devices";
}

TEST(AutoFlScheduler, SharedTablesUseThreeTables)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 24);
    AutoFlConfig cfg;
    cfg.shared_tables = true;
    AutoFlScheduler sched(fleet, cfg);
    // Devices of the same tier share a table object.
    EXPECT_EQ(&sched.table_for(0), &sched.table_for(1));       // H with H
    EXPECT_EQ(&sched.table_for(30), &sched.table_for(31));     // M with M
    EXPECT_NE(&sched.table_for(0), &sched.table_for(30));      // H vs M
    EXPECT_NE(&sched.table_for(30), &sched.table_for(150));    // M vs L
}

TEST(AutoFlScheduler, PerDeviceTablesAreIndependent)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 25);
    AutoFlScheduler sched(fleet, AutoFlConfig{});
    EXPECT_NE(&sched.table_for(0), &sched.table_for(1));
}

TEST(AutoFlScheduler, MemoryFootprintIsBounded)
{
    Fleet fleet(FleetMix{}, VarianceScenario::Combined, 26);
    AutoFlScheduler sched(fleet, AutoFlConfig{});
    GlobalObservation gobs = cnn_observation();
    for (int round = 0; round < 30; ++round) {
        fleet.begin_round();
        auto locals = quiet_locals(fleet);
        for (int d = 0; d < fleet.size(); ++d)
            locals[static_cast<size_t>(d)].state = fleet.device(d).state();
        auto plans = sched.select(gobs, locals, 20);
        RoundExec exec;
        exec.round_s = 1.0;
        for (const auto &p : plans) {
            DeviceExec e;
            e.device_id = p.device_id;
            e.comp_j = 1.0;
            exec.participants.push_back(e);
        }
        sched.observe_outcome(exec, 50.0 + round);
    }
    EXPECT_GT(sched.total_entries(), 0u);
    // Paper: ~80 MB for 200 devices; we must stay well under that.
    EXPECT_LT(sched.total_bytes(), 80ull * 1024 * 1024);
}

TEST(AutoFlScheduler, RewardTrackingRuns)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 27);
    AutoFlScheduler sched(fleet, AutoFlConfig{});
    auto plans = sched.select(cnn_observation(), quiet_locals(fleet), 5);
    RoundExec exec;
    exec.round_s = 1.0;
    for (const auto &p : plans) {
        DeviceExec e;
        e.device_id = p.device_id;
        e.comp_j = 1.0;
        exec.participants.push_back(e);
    }
    sched.observe_outcome(exec, 10.0);
    EXPECT_EQ(sched.rounds_seen(), 1);
    // First round: acc improved from 0 -> success branch for everyone.
    EXPECT_GT(sched.last_mean_reward(), 0.0);
}

} // namespace
} // namespace autofl
