/**
 * @file
 * Streaming round-pipeline tests: snapshot/epoch reads and turn-ordered
 * striped commits on the ShardedStore, and the pipeline's two headline
 * guarantees — pipeline_depth=1 SemiAsync(S=0) reproduces the
 * synchronous weights bit-for-bit, and pipelined runs at any depth are
 * deterministic under a fixed seed regardless of thread interleaving.
 */
#include <atomic>
#include <cmath>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fl/server.h"
#include "fl/system.h"
#include "ps/ps_server.h"
#include "ps/sharded_store.h"

namespace autofl {
namespace {

// ---------------------------------------------------- store snapshots --

TEST(StoreSnapshot, InitialSnapshotIsEpochZeroOfInitWeights)
{
    std::vector<float> init(37);
    for (size_t i = 0; i < init.size(); ++i)
        init[i] = static_cast<float>(i) * 0.5f;
    ShardedStore store(init, 4);
    const StoreSnapshot snap = store.latest_snapshot();
    EXPECT_EQ(snap.epoch, 0u);
    ASSERT_NE(snap.weights, nullptr);
    EXPECT_EQ(*snap.weights, init);
}

TEST(StoreSnapshot, LatestNeverRollsBack)
{
    ShardedStore store(std::vector<float>(8, 0.0f), 2);
    auto w1 = std::make_shared<const std::vector<float>>(8, 1.0f);
    auto w2 = std::make_shared<const std::vector<float>>(8, 2.0f);
    store.set_latest_snapshot(2, w2);
    store.set_latest_snapshot(1, w1);  // Late wave: must be ignored.
    const StoreSnapshot snap = store.latest_snapshot();
    EXPECT_EQ(snap.epoch, 2u);
    EXPECT_FLOAT_EQ(snap.weights->front(), 2.0f);
}

TEST(StoreSnapshot, TurnOrderedUpdatesApplyInClockOrder)
{
    // Two "commits" race from two threads in reverse claim order; the
    // turn gate must serialize each shard to 0 then 1, so increments
    // compose as ((w + 1) * 2), never ((w * 2) + 1).
    ShardedStore store(std::vector<float>(64, 1.0f), 8);
    std::thread second([&] {
        for (int s = 0; s < store.num_shards(); ++s) {
            store.update_shard_in_turn(
                s, 1,
                [](float *w, size_t b, size_t e) {
                    for (size_t i = b; i < e; ++i)
                        w[i] *= 2.0f;
                },
                nullptr);
        }
    });
    std::thread first([&] {
        for (int s = 0; s < store.num_shards(); ++s) {
            store.update_shard_in_turn(
                s, 0,
                [](float *w, size_t b, size_t e) {
                    for (size_t i = b; i < e; ++i)
                        w[i] += 1.0f;
                },
                nullptr);
        }
    });
    first.join();
    second.join();
    for (float w : store.read())
        EXPECT_FLOAT_EQ(w, 4.0f);
    for (int s = 0; s < store.num_shards(); ++s)
        EXPECT_EQ(store.shard_version(s), 2u);
}

// -------------------------------------------------- pipelined runtime --

FlSystemConfig
pipeline_system(SyncMode mode, int staleness_bound, int threads, int depth,
                Algorithm alg = Algorithm::FedAvg)
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, 6};
    cfg.algorithm = alg;
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 240;
    cfg.data.test_samples = 80;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = 12;
    cfg.seed = 23;
    cfg.threads = threads;
    cfg.ps.mode = mode;
    cfg.ps.staleness_bound = staleness_bound;
    cfg.ps.shards = 5;
    cfg.ps.pipeline_depth = depth;
    return cfg;
}

const std::vector<int> kRoundIds = {0, 3, 5, 7, 9, 11};

/** Stream @p rounds rounds through the system, collecting results. */
std::vector<PsRoundResult>
stream_rounds(FlSystem &fl, int rounds)
{
    std::mutex mu;
    std::vector<PsRoundResult> results;
    for (int r = 0; r < rounds; ++r) {
        fl.submit_round(kRoundIds, static_cast<uint64_t>(r),
                        [&](const PsRoundResult &res) {
                            std::lock_guard<std::mutex> lk(mu);
                            results.push_back(res);
                        });
    }
    fl.drain();
    return results;
}

TEST(RoundPipeline, Depth1SemiAsyncZeroBoundMatchesSyncBitForBit)
{
    // The invariant that makes the refactor safe to land: the drained
    // pipeline at S=0 is the synchronous path, bit for bit.
    FlSystem sync(pipeline_system(SyncMode::Sync, 0, 4, 1));
    FlSystem semi(pipeline_system(SyncMode::SemiAsync, 0, 4, 1));

    for (uint64_t round = 0; round < 3; ++round) {
        sync.run_round(kRoundIds, round);
        semi.run_round(kRoundIds, round);
        const auto &a = sync.server().global_weights();
        const auto &b = semi.server().global_weights();
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]) << "round " << round << " index " << i;
    }
}

TEST(RoundPipeline, PipelinedSemiAsyncZeroBoundMatchesSyncBitForBit)
{
    // At S=0 each round is one commit, so the pipelined pull epoch is
    // exactly "all previous commits" — streaming four rounds deep must
    // still reproduce the synchronous weights bit for bit.
    constexpr int kRounds = 5;
    FlSystem sync(pipeline_system(SyncMode::Sync, 0, 4, 1));
    for (uint64_t round = 0; round < kRounds; ++round)
        sync.run_round(kRoundIds, round);

    FlSystem piped(pipeline_system(SyncMode::SemiAsync, 0, 4, 4));
    ASSERT_TRUE(piped.pipelined());
    const auto results = stream_rounds(piped, kRounds);
    ASSERT_EQ(results.size(), static_cast<size_t>(kRounds));

    const auto &a = sync.server().global_weights();
    const auto &b = piped.server().global_weights();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "index " << i;
}

TEST(RoundPipeline, PipelinedRunsAreDeterministic)
{
    // Two identical streaming runs at depth 4 with real cross-round
    // overlap (S=1 splits every round into two commits): weights,
    // stats and concurrently-evaluated accuracies must all be
    // identical, whatever the thread interleaving.
    constexpr int kRounds = 6;
    auto run = [&](std::vector<PsRoundResult> &results) {
        FlSystem fl(pipeline_system(SyncMode::SemiAsync, 1, 4, 4));
        results = stream_rounds(fl, kRounds);
        return fl.server().global_weights();
    };
    std::vector<PsRoundResult> res_a, res_b;
    const std::vector<float> w_a = run(res_a);
    const std::vector<float> w_b = run(res_b);

    ASSERT_EQ(w_a.size(), w_b.size());
    for (size_t i = 0; i < w_a.size(); ++i)
        ASSERT_EQ(w_a[i], w_b[i]) << "index " << i;

    ASSERT_EQ(res_a.size(), res_b.size());
    for (size_t r = 0; r < res_a.size(); ++r) {
        EXPECT_EQ(res_a[r].round, res_b[r].round);
        EXPECT_GE(res_a[r].accuracy, 0.0);  // Every round really scored.
        EXPECT_EQ(res_a[r].accuracy, res_b[r].accuracy);
        EXPECT_EQ(res_a[r].final_epoch, res_b[r].final_epoch);
        EXPECT_EQ(res_a[r].stats.applied, res_b[r].stats.applied);
        EXPECT_EQ(res_a[r].stats.commits, res_b[r].stats.commits);
        EXPECT_EQ(res_a[r].stats.mean_staleness,
                  res_b[r].stats.mean_staleness);
    }
}

TEST(RoundPipeline, ResultsArriveInRoundOrderWithFullAccounting)
{
    constexpr int kRounds = 8;
    FlSystem fl(pipeline_system(SyncMode::SemiAsync, 1, 4, 3));
    const auto results = stream_rounds(fl, kRounds);
    ASSERT_EQ(results.size(), static_cast<size_t>(kRounds));

    const size_t k = kRoundIds.size();
    uint64_t prev_epoch = 0;
    for (size_t r = 0; r < results.size(); ++r) {
        const PsRoundResult &res = results[r];
        EXPECT_EQ(res.round, r) << "delivered out of order";
        EXPECT_EQ(res.stats.pushed, static_cast<int>(k));
        EXPECT_EQ(res.stats.applied + res.stats.evicted, res.stats.pushed);
        EXPECT_EQ(res.stats.commits, 2);  // ceil(6 / ceil(6/2)) batches.
        EXPECT_LE(res.stats.max_staleness, 1);
        EXPECT_GE(res.accuracy, 0.0);
        EXPECT_GT(res.final_epoch, prev_epoch);
        prev_epoch = res.final_epoch;
    }
    EXPECT_LE(fl.ps()->aggregator().lifetime_max_applied_staleness(), 1);
    for (float w : fl.server().global_weights())
        ASSERT_TRUE(std::isfinite(w));
}

TEST(RoundPipeline, ConcurrentEvalScoresTheFinalSnapshot)
{
    FlSystem fl(pipeline_system(SyncMode::SemiAsync, 1, 4, 4));
    const auto results = stream_rounds(fl, 4);
    ASSERT_FALSE(results.empty());
    // After drain the wrapped Server holds the final store content, so
    // the last concurrently-evaluated accuracy must equal a synchronous
    // re-evaluation of those weights.
    EXPECT_DOUBLE_EQ(results.back().accuracy, fl.evaluate());
}

TEST(RoundPipeline, PipelinedFedNovaStaysFiniteAndDeterministic)
{
    auto run = [&] {
        FlSystem fl(pipeline_system(SyncMode::SemiAsync, 1, 4, 4,
                                    Algorithm::FedNova));
        stream_rounds(fl, 4);
        return fl.server().global_weights();
    };
    const std::vector<float> a = run();
    const std::vector<float> b = run();
    ASSERT_EQ(a, b);
    for (float w : a)
        ASSERT_TRUE(std::isfinite(w));
}

TEST(RoundPipeline, PipelinedAsyncModeCommitsPerUpdate)
{
    FlSystem fl(pipeline_system(SyncMode::Async, 0, 4, 4));
    const auto results = stream_rounds(fl, 3);
    ASSERT_EQ(results.size(), 3u);
    for (const auto &res : results) {
        EXPECT_EQ(res.stats.commits, static_cast<int>(kRoundIds.size()));
        EXPECT_EQ(res.stats.applied, res.stats.pushed);
        EXPECT_EQ(res.stats.evicted, 0);
    }
    for (float w : fl.server().global_weights())
        ASSERT_TRUE(std::isfinite(w));
}

/**
 * Bounded-staleness invariant under streaming: whatever the depth and
 * interleaving, no applied update's staleness may exceed the bound, and
 * every push is accounted applied or evicted.
 */
class PipelineStalenessBoundTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelineStalenessBoundTest, NoAppliedUpdateExceedsTheBound)
{
    const int bound = GetParam();
    FlSystemConfig cfg = pipeline_system(SyncMode::SemiAsync, bound, 4, 4);
    cfg.seed = 7 + static_cast<uint64_t>(bound);
    FlSystem fl(cfg);
    ASSERT_TRUE(fl.pipelined());

    const auto results = stream_rounds(fl, 4);
    for (const auto &res : results) {
        EXPECT_EQ(res.stats.applied + res.stats.evicted, res.stats.pushed);
        EXPECT_LE(res.stats.max_staleness, bound);
        EXPECT_LE(res.stats.mean_staleness, bound);
    }
    EXPECT_LE(fl.ps()->aggregator().lifetime_max_applied_staleness(),
              bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, PipelineStalenessBoundTest,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace autofl
