/** @file Statistics accumulator and table emitter tests. */
#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "util/stats.h"
#include "util/table.h"

namespace autofl {
namespace {

TEST(SlidingWindow, MeanTracksOnlyTheWindow)
{
    SlidingWindow w(3);
    EXPECT_EQ(w.mean(), 0.0);
    EXPECT_EQ(w.count(), 0u);
    w.add(6.0);
    EXPECT_DOUBLE_EQ(w.mean(), 6.0);
    w.add(0.0);
    w.add(3.0);
    EXPECT_DOUBLE_EQ(w.mean(), 3.0);
    // A fourth observation evicts the first: window is {0, 3, 9}.
    w.add(9.0);
    EXPECT_EQ(w.count(), 3u);
    EXPECT_DOUBLE_EQ(w.mean(), 4.0);
    EXPECT_EQ(w.capacity(), 3u);
}

TEST(SlidingWindow, WrapAroundMeanTracksLastCapacityValues)
{
    // The ring wraps several times; the mean must always cover exactly
    // the last `capacity` observations, whatever next_ points at.
    SlidingWindow w(4);
    for (int i = 1; i <= 10; ++i) {
        w.add(static_cast<double>(i));
        const int lo = std::max(1, i - 3);
        double expect = 0.0;
        for (int v = lo; v <= i; ++v)
            expect += v;
        expect /= (i - lo + 1);
        EXPECT_DOUBLE_EQ(w.mean(), expect) << "after adding " << i;
    }
    EXPECT_EQ(w.count(), 4u);  // {7, 8, 9, 10}.
    EXPECT_DOUBLE_EQ(w.mean(), 8.5);
}

TEST(SlidingWindow, CapacityClampedToOne)
{
    SlidingWindow w(0);
    w.add(2.0);
    w.add(8.0);
    EXPECT_EQ(w.capacity(), 1u);
    EXPECT_DOUBLE_EQ(w.mean(), 8.0);
}

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsBulk)
{
    RunningStat a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double v = i * 0.37 - 5.0;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, empty;
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Ewma, TracksConstant)
{
    Ewma e(0.3);
    EXPECT_FALSE(e.initialized());
    for (int i = 0; i < 50; ++i)
        e.add(4.2);
    EXPECT_TRUE(e.initialized());
    EXPECT_NEAR(e.value(), 4.2, 1e-9);
}

TEST(Ewma, FirstValueSeeds)
{
    Ewma e(0.1);
    EXPECT_DOUBLE_EQ(e.add(10.0), 10.0);
    EXPECT_NEAR(e.add(0.0), 9.0, 1e-12);
}

TEST(Percentile, EdgesAndMedian)
{
    std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
    EXPECT_DOUBLE_EQ(percentile({}, 0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({}, 100), 0.0);
}

TEST(Percentile, SingleSampleIsThatSampleAtAnyP)
{
    EXPECT_DOUBLE_EQ(percentile({7.5}, 0), 7.5);
    EXPECT_DOUBLE_EQ(percentile({7.5}, 50), 7.5);
    EXPECT_DOUBLE_EQ(percentile({7.5}, 99), 7.5);
    EXPECT_DOUBLE_EQ(percentile({7.5}, 100), 7.5);
}

TEST(Percentile, OutOfRangePClampsToExtremes)
{
    const std::vector<double> v = {3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, -10), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 250), 3.0);
}

TEST(Percentile, InterpolatesBetweenRanksOnUnsortedInput)
{
    // Linear interpolation at rank p/100 * (n-1); input order must not
    // matter (percentile sorts its copy).
    const std::vector<double> v = {40.0, 10.0, 30.0, 20.0};
    EXPECT_DOUBLE_EQ(percentile(v, 75), 32.5);  // 30 * .75 + 40 * .25.
    EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
    EXPECT_NEAR(percentile(v, 99), 39.7, 1e-9);
}

TEST(MeanGeomean, Basics)
{
    EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
    EXPECT_NEAR(geomean_of({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean_of({}), 0.0);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.set_header({"name", "value"});
    t.add_row({"alpha", TextTable::num(1.5)});
    t.add_row({"b", "x"});
    std::ostringstream os;
    t.render(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t;
    t.set_header({"a", "b"});
    t.add_row({"1", "2"});
    EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, NumPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 3), "3.142");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

} // namespace
} // namespace autofl
