/**
 * @file
 * Request-scheduling tests for the serving plane: the free-slot engine
 * claim (waiters progress on any freed slot), dynamic-batching
 * coalescing and deadline semantics, admission control under overload
 * (both shed policies), shutdown typing, and the determinism property —
 * same requests, same predictions, at any concurrency (bit-exact on the
 * scalar arch however timing composes the batches). Runs under TSan in
 * CI together with pipelined training.
 */
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fl/system.h"
#include "kernels/arch.h"
#include "ps/ps_server.h"
#include "serve/dynamic_batcher.h"
#include "serve/model_service.h"
#include "test_util.h"

namespace autofl {
namespace {

using testing::random_weights;
using testing::ScopedKernelArch;
using testing::small_test_set;

// ------------------------------------------------ free-slot claiming --

TEST(EngineClaim, WaitersProgressOnAnyFreedSlot)
{
    // Regression for the all-slots-busy fallback that parked every
    // waiter on one deterministic slot: with one of two slots pinned
    // for the whole test, N > slots concurrent forwards must all
    // complete through the other slot (the old code deadlocked the
    // waiters whose round-robin start landed on the pinned slot).
    const Workload w = Workload::CnnMnist;
    const Dataset test = small_test_set(w, 16);
    ServeConfig cfg;
    cfg.workers = 2;
    ModelService ms(w, cfg);
    ms.publish(random_weights(w, 3));
    const SnapshotHandle h = ms.acquire();

    InferenceEngine::Lease pin(ms.engine(), h);  // Occupies slot 1 of 2.
    constexpr int kWaiters = 8;
    std::atomic<int> done{0};
    std::vector<std::thread> ts;
    ts.reserve(kWaiters);
    for (int i = 0; i < kWaiters; ++i) {
        ts.emplace_back([&, i] {
            Tensor logits = ms.engine().forward(h, test.batch_x({i}));
            ASSERT_EQ(logits.dim(0), 1);
            done.fetch_add(1);
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(done.load(), kWaiters);
}

// ------------------------------------------------ dynamic batching --

TEST(DynamicBatcher, CoalescesConcurrentSubmissionsIntoOneBatch)
{
    const Workload w = Workload::CnnMnist;
    const Dataset test = small_test_set(w, 8);
    ServeConfig cfg;
    cfg.batch_size = 8;
    cfg.workers = 1;              // One dispatcher: one batch stream.
    cfg.batch_timeout_us = 100000;  // Plenty to gather all 8.
    ModelService ms(w, cfg);
    ms.publish(random_weights(w, 5));

    std::vector<std::future<InferenceReply>> futs;
    for (int i = 0; i < 8; ++i)
        futs.push_back(ms.submit(test.batch_x({i}), true));
    for (auto &f : futs) {
        const InferenceReply r = f.get();
        ASSERT_TRUE(r.ok()) << reply_status_name(r.status);
        EXPECT_EQ(r.epoch, 1u);
        EXPECT_EQ(r.logits.dim(0), 1);
        ASSERT_EQ(r.classes.size(), 1u);
        // All 8 single-row submissions ran as ONE coalesced pass.
        EXPECT_EQ(r.batch_rows, 8);
    }
    const ServeStats st = ms.serving_stats();
    EXPECT_EQ(st.submitted, 8u);
    EXPECT_EQ(st.admitted, 8u);
    EXPECT_EQ(st.shed, 0u);
    EXPECT_EQ(st.completed, 8u);
    EXPECT_EQ(st.batches, 1u);
    EXPECT_EQ(st.batched_rows, 8u);
    EXPECT_DOUBLE_EQ(st.mean_batch_rows(), 8.0);
}

TEST(DynamicBatcher, DeadlineClosesPartialBatch)
{
    // batch_size is far larger than the offered work: the deadline must
    // dispatch the partial batch instead of waiting for peers forever.
    const Workload w = Workload::CnnMnist;
    const Dataset test = small_test_set(w, 4);
    ServeConfig cfg;
    cfg.batch_size = 64;
    cfg.workers = 1;
    cfg.batch_timeout_us = 1000;
    ModelService ms(w, cfg);
    ms.publish(random_weights(w, 6));

    auto f0 = ms.submit(test.batch_x({0}));
    auto f1 = ms.submit(test.batch_x({1}));
    const InferenceReply r0 = f0.get();
    const InferenceReply r1 = f1.get();
    ASSERT_TRUE(r0.ok());
    ASSERT_TRUE(r1.ok());
    EXPECT_LT(r0.batch_rows, 64);
    EXPECT_LT(r1.batch_rows, 64);
}

TEST(DynamicBatcher, SplitsMultiRowSubmissionsExactly)
{
    // Mixed-size submissions coalesce into one pass and split back per
    // request; on the scalar arch the split slices must equal a direct
    // engine forward of the same rows bit-for-bit.
    ScopedKernelArch scalar(kernels::KernelArch::Scalar);
    const Workload w = Workload::CnnMnist;
    const Dataset test = small_test_set(w, 16);
    ServeConfig cfg;
    cfg.batch_size = 16;
    cfg.workers = 1;
    cfg.batch_timeout_us = 100000;
    ModelService ms(w, cfg);
    ms.publish(random_weights(w, 7));
    const SnapshotHandle h = ms.acquire();

    const std::vector<std::vector<int>> groups = {
        {0}, {1, 2, 3}, {4, 5}, {6, 7, 8, 9, 10}};
    std::vector<std::future<InferenceReply>> futs;
    for (const auto &g : groups)
        futs.push_back(ms.submit(test.batch_x(g)));
    for (size_t gi = 0; gi < groups.size(); ++gi) {
        const InferenceReply r = futs[gi].get();
        ASSERT_TRUE(r.ok());
        const Tensor direct =
            ms.engine().forward(h, test.batch_x(groups[gi]));
        ASSERT_EQ(r.logits.shape(), direct.shape());
        for (size_t i = 0; i < direct.size(); ++i)
            ASSERT_EQ(r.logits[i], direct[i]) << "group " << gi;
    }
}

TEST(DynamicBatcher, CoalescesTimeMajorLstmAlongTheBatchAxis)
{
    // The LSTM's batch_x layout is time-major {seq, batch, vocab}:
    // coalescing must concatenate along axis 1, not axis 0 (which
    // would build one garbage longer "sequence" and misindex the
    // logits). Regression: each coalesced reply must equal a direct
    // engine forward of the same samples bit-for-bit on scalar.
    ScopedKernelArch scalar(kernels::KernelArch::Scalar);
    const Workload w = Workload::LstmShakespeare;
    const Dataset test = small_test_set(w, 12);
    ServeConfig cfg;
    cfg.batch_size = 12;
    cfg.workers = 1;
    cfg.batch_timeout_us = 100000;
    ModelService ms(w, cfg);
    ms.publish(random_weights(w, 8));
    const SnapshotHandle h = ms.acquire();

    const std::vector<std::vector<int>> groups = {
        {0}, {1, 2, 3}, {4, 5}, {6}};
    std::vector<std::future<InferenceReply>> futs;
    for (const auto &g : groups)
        futs.push_back(ms.submit(test.batch_x(g), true));
    for (size_t gi = 0; gi < groups.size(); ++gi) {
        const InferenceReply r = futs[gi].get();
        ASSERT_TRUE(r.ok()) << reply_status_name(r.status);
        EXPECT_EQ(r.batch_rows, 7);  // All four submissions coalesced.
        ASSERT_EQ(r.classes.size(), groups[gi].size());
        const Tensor direct =
            ms.engine().forward(h, test.batch_x(groups[gi]));
        ASSERT_EQ(r.logits.shape(), direct.shape());
        for (size_t i = 0; i < direct.size(); ++i)
            ASSERT_EQ(r.logits[i], direct[i]) << "group " << gi;
    }
}

TEST(DynamicBatcher, NoPublishedModelRepliesTyped)
{
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.batch_timeout_us = 0;
    ModelService ms(Workload::CnnMnist, cfg);
    const Dataset test = small_test_set(Workload::CnnMnist, 1);
    const InferenceReply r = ms.query(test.batch_x({0}));
    EXPECT_EQ(r.status, ReplyStatus::NoModel);
    EXPECT_EQ(r.epoch, 0u);
}

TEST(DynamicBatcher, WrongShapeRepliesBadRequestBeforeQueueing)
{
    // Coalescing concatenates raw buffers, so a tensor that does not
    // fit the served model must fail typed at submit — wrong rank,
    // wrong per-sample dims, zero samples, or another workload's
    // layout must never reach a dispatcher memcpy.
    ModelService ms(Workload::CnnMnist);
    ms.publish(random_weights(Workload::CnnMnist, 14));

    EXPECT_EQ(ms.query(Tensor({4})).status, ReplyStatus::BadRequest);
    EXPECT_EQ(ms.query(Tensor({1, 1, 7, 7})).status,
              ReplyStatus::BadRequest);
    EXPECT_EQ(ms.query(Tensor({0, 1, 12, 12})).status,
              ReplyStatus::BadRequest);
    const Dataset lstm = small_test_set(Workload::LstmShakespeare, 1);
    EXPECT_EQ(ms.query(lstm.batch_x({0})).status,
              ReplyStatus::BadRequest);
    // A correctly shaped request still serves.
    const Dataset test = small_test_set(Workload::CnnMnist, 1);
    EXPECT_TRUE(ms.query(test.batch_x({0})).ok());
    const ServeStats st = ms.serving_stats();
    EXPECT_EQ(st.submitted, 5u);
    EXPECT_EQ(st.admitted, 1u);
}

// ------------------------------------------------ admission control --

TEST(AdmissionControl, RejectNewShedsBeyondQueueDepth)
{
    const Workload w = Workload::CnnMnist;
    const Dataset test = small_test_set(w, 32);
    ServeConfig cfg;
    cfg.batch_size = 4;
    cfg.workers = 1;
    cfg.queue_depth = 4;
    cfg.batch_timeout_us = 50000;
    cfg.shed = ShedPolicy::RejectNew;
    ModelService ms(w, cfg);
    ms.publish(random_weights(w, 9));
    const SnapshotHandle h = ms.acquire();

    std::vector<std::future<InferenceReply>> futs;
    {
        // Pin the only slot: the dispatcher can gather one in-flight
        // batch but never run it, so the queue must fill and shed.
        InferenceEngine::Lease pin(ms.engine(), h);
        for (int i = 0; i < 32; ++i)
            futs.push_back(ms.submit(test.batch_x({i % 32})));
        // Everything beyond one in-flight batch + queue_depth is shed
        // by the time the flood ends; shed futures are already ready.
        const ServeStats mid = ms.serving_stats();
        EXPECT_GE(mid.shed,
                  static_cast<uint64_t>(32 - cfg.queue_depth -
                                        cfg.batch_size));
        // Pin released here: the dispatcher drains the admitted work.
    }
    int ok = 0, shed = 0;
    for (auto &f : futs) {
        const InferenceReply r = f.get();
        if (r.ok()) {
            ++ok;
            EXPECT_EQ(r.epoch, 1u);
        } else {
            EXPECT_EQ(r.status, ReplyStatus::Shed);
            ++shed;
        }
    }
    EXPECT_EQ(ok + shed, 32);
    // At most one gathered batch + a full queue were admitted; at
    // least a full queue was (the dispatcher may not have opened a
    // batch before the flood ended).
    EXPECT_LE(ok, cfg.queue_depth + cfg.batch_size);
    EXPECT_GE(ok, cfg.queue_depth);
    const ServeStats st = ms.serving_stats();
    EXPECT_EQ(st.submitted, 32u);
    EXPECT_EQ(st.shed, static_cast<uint64_t>(shed));
    EXPECT_EQ(st.completed, static_cast<uint64_t>(ok));
    EXPECT_EQ(st.admitted, static_cast<uint64_t>(ok));
}

TEST(AdmissionControl, DropOldestEvictsHeadAndServesFreshest)
{
    const Workload w = Workload::CnnMnist;
    const Dataset test = small_test_set(w, 12);
    ServeConfig cfg;
    cfg.batch_size = 4;
    cfg.workers = 1;
    cfg.queue_depth = 4;
    cfg.batch_timeout_us = 50000;
    cfg.shed = ShedPolicy::DropOldest;
    ModelService ms(w, cfg);
    ms.publish(random_weights(w, 10));
    const SnapshotHandle h = ms.acquire();

    std::vector<std::future<InferenceReply>> futs;
    {
        InferenceEngine::Lease pin(ms.engine(), h);
        for (int i = 0; i < 12; ++i)
            futs.push_back(ms.submit(test.batch_x({i})));
    }
    int ok = 0, shed = 0;
    for (auto &f : futs) {
        const InferenceReply r = f.get();
        (r.ok() ? ok : shed)++;
        if (!r.ok()) {
            EXPECT_EQ(r.status, ReplyStatus::Shed);
        }
    }
    EXPECT_EQ(ok + shed, 12);
    EXPECT_GT(shed, 0);
    const ServeStats st = ms.serving_stats();
    EXPECT_EQ(st.submitted, 12u);
    EXPECT_EQ(st.shed, static_cast<uint64_t>(shed));
    // Every submission was admitted (evictions made room), so admitted
    // counts all 12 while shed counts the evicted head requests.
    EXPECT_EQ(st.admitted, 12u);
}

TEST(AdmissionControl, DropOldestServesTheLastSubmission)
{
    const Workload w = Workload::CnnMnist;
    const Dataset test = small_test_set(w, 12);
    ServeConfig cfg;
    cfg.batch_size = 2;
    cfg.workers = 1;
    cfg.queue_depth = 2;
    cfg.batch_timeout_us = 20000;
    cfg.shed = ShedPolicy::DropOldest;
    ModelService ms(w, cfg);
    ms.publish(random_weights(w, 11));
    const SnapshotHandle h = ms.acquire();

    std::future<InferenceReply> last;
    {
        InferenceEngine::Lease pin(ms.engine(), h);
        for (int i = 0; i < 11; ++i)
            ms.submit(test.batch_x({i}));
        last = ms.submit(test.batch_x({11}));
    }
    EXPECT_TRUE(last.get().ok());
}

// ------------------------------------------------------- shutdown --

TEST(Shutdown, StopServingFailsLaterSubmitsTyped)
{
    const Workload w = Workload::CnnMnist;
    const Dataset test = small_test_set(w, 2);
    ModelService ms(w);
    ms.publish(random_weights(w, 12));

    EXPECT_TRUE(ms.query(test.batch_x({0})).ok());
    ms.stop_serving();
    ms.stop_serving();  // Idempotent.
    const InferenceReply r = ms.query(test.batch_x({1}));
    EXPECT_EQ(r.status, ReplyStatus::Shutdown);
    // Direct engine reads keep working after the batcher stops.
    EXPECT_GT(ms.evaluate(ms.acquire(), test).samples, 0);
}

TEST(Shutdown, PendingRequestsCompleteOnStop)
{
    // Liveness: stopping while requests are queued and a batch is
    // blocked on a pinned slot must not hang once the pin is released,
    // and every future completes with a typed status.
    const Workload w = Workload::CnnMnist;
    const Dataset test = small_test_set(w, 8);
    ServeConfig cfg;
    cfg.batch_size = 2;
    cfg.workers = 1;
    cfg.queue_depth = 8;
    cfg.batch_timeout_us = 1000;
    ModelService ms(w, cfg);
    ms.publish(random_weights(w, 13));
    const SnapshotHandle h = ms.acquire();

    std::vector<std::future<InferenceReply>> futs;
    auto pin = std::make_unique<InferenceEngine::Lease>(ms.engine(), h);
    for (int i = 0; i < 8; ++i)
        futs.push_back(ms.submit(test.batch_x({i})));
    std::thread stopper([&] { ms.stop_serving(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    pin.reset();  // Unblock the in-flight batch; shutdown completes.
    stopper.join();
    int ok = 0, down = 0;
    for (auto &f : futs) {
        const InferenceReply r = f.get();
        ASSERT_TRUE(r.status == ReplyStatus::Ok ||
                    r.status == ReplyStatus::Shutdown)
            << reply_status_name(r.status);
        (r.ok() ? ok : down)++;
    }
    EXPECT_EQ(ok + down, 8);
}

// ---------------------------------------------------- determinism --

TEST(Determinism, SamePredictionsAtAnyConcurrency)
{
    // The acceptance property: on the scalar arch, inference logits are
    // bit-identical for any batch shape, so however timing coalesces
    // concurrent submissions the predicted classes cannot move.
    ScopedKernelArch scalar(kernels::KernelArch::Scalar);
    const Workload w = Workload::LstmShakespeare;
    constexpr int kRequests = 48;
    const Dataset test = small_test_set(w, kRequests);
    const std::vector<float> weights = random_weights(w, 17);

    const auto run = [&](int threads) {
        ServeConfig cfg;
        cfg.batch_size = 8;
        cfg.workers = 2;
        cfg.batch_timeout_us = threads > 1 ? 500 : 0;
        ModelService ms(w, cfg);
        ms.publish(weights);
        std::vector<int> classes(kRequests, -1);
        std::vector<std::thread> ts;
        ts.reserve(static_cast<size_t>(threads));
        for (int t = 0; t < threads; ++t) {
            ts.emplace_back([&, t] {
                for (int i = t; i < kRequests; i += threads) {
                    const InferenceReply r =
                        ms.query(test.batch_x({i}), true);
                    ASSERT_TRUE(r.ok());
                    classes[static_cast<size_t>(i)] = r.classes[0];
                }
            });
        }
        for (auto &t : ts)
            t.join();
        return classes;
    };

    const std::vector<int> serial = run(1);
    const std::vector<int> wide = run(12);
    EXPECT_EQ(serial, wide);
    for (int c : serial)
        EXPECT_GE(c, 0);
}

TEST(Determinism, SubmitServesDuringPipelinedTraining)
{
    // The production shape under TSan: dynamic-batched submissions
    // acquire store snapshots while striped commit waves stream
    // underneath. Replies must be typed Ok with epochs from the store.
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, 6};
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 180;
    cfg.data.test_samples = 60;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = 6;
    cfg.seed = 31;
    cfg.threads = 4;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.staleness_bound = 1;
    cfg.ps.shards = 5;
    cfg.ps.pipeline_depth = 3;
    cfg.serve.batch_size = 8;
    cfg.serve.workers = 2;
    cfg.serve.batch_timeout_us = 200;
    FlSystem fl(cfg);
    ASSERT_TRUE(fl.pipelined());
    ModelService &serve = fl.serve();

    std::atomic<bool> stop{false};
    std::atomic<int> served{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
        clients.emplace_back([&, c] {
            uint64_t last_epoch = 0;
            while (!stop.load(std::memory_order_acquire)) {
                const InferenceReply r = serve.query(
                    fl.test_set().batch_x({c, c + 7}), true);
                ASSERT_TRUE(r.ok()) << reply_status_name(r.status);
                ASSERT_GE(r.epoch, last_epoch);
                last_epoch = r.epoch;
                ASSERT_EQ(r.classes.size(), 2u);
                served.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    const std::vector<int> ids = {0, 1, 2, 3, 4, 5};
    for (int round = 0; round < 5; ++round)
        fl.submit_round(ids, static_cast<uint64_t>(round), nullptr);
    fl.drain();
    stop.store(true, std::memory_order_release);
    for (auto &t : clients)
        t.join();

    EXPECT_GT(served.load(), 0);
    const ServeStats st = serve.serving_stats();
    EXPECT_EQ(st.completed, static_cast<uint64_t>(served.load()));
    EXPECT_GE(st.mean_batch_rows(), 2.0);  // >= one 2-row request each.
}

} // namespace
} // namespace autofl
