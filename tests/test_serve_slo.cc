/**
 * @file
 * SLO-scheduling tests for the serving plane: the RequestQueue's
 * deadline/priority semantics exercised synchronously (expired-on-
 * arrival refusal, EDF-within-class with FIFO tie-break, the starvation
 * bound, infeasibility shedding at pop, DropOldest eviction order), and
 * the concurrent guarantees through DynamicBatcher / ServingGateway
 * (expired requests complete DeadlineExceeded without ever executing,
 * low-priority progress under sustained high-priority load, weighted
 * slot sharing keeping an overloaded neighbor from starving an
 * entitled model). Runs under TSan in CI.
 */
#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/dynamic_batcher.h"
#include "serve/model_service.h"
#include "serve/request_queue.h"
#include "serve/serving_gateway.h"
#include "test_util.h"

namespace autofl {
namespace {

using testing::random_weights;
using testing::small_test_set;

// ------------------------------------------------- queue unit tests --
// The queue is a pure scheduling structure (its owner serializes), so
// its contract is testable synchronously with a fake clock.

InferenceRequest
req(uint64_t deadline_us, Priority prio = Priority::Normal, int samples = 1)
{
    InferenceRequest r;
    r.samples = samples;
    r.deadline_us = deadline_us;
    r.priority = prio;
    return r;
}

/** Push expecting admission; fails the test on any other outcome. */
void
admit(RequestQueue &q, InferenceRequest r, uint64_t now)
{
    InferenceRequest evicted;
    bool has_evicted = false;
    ASSERT_EQ(q.push(r, now, evicted, has_evicted),
              RequestQueue::Push::Admitted);
    ASSERT_FALSE(has_evicted);
}

/** Pop requests one row at a time; returns their deadlines in order. */
std::vector<uint64_t>
pop_order(RequestQueue &q, uint64_t now, uint64_t estimate = 0)
{
    std::vector<uint64_t> order;
    std::vector<InferenceRequest> out, infeasible;
    while (!q.empty()) {
        out.clear();
        infeasible.clear();
        q.pop_batch(out, infeasible, 1, now, estimate);
        for (const auto &r : out)
            order.push_back(r.deadline_us);
        EXPECT_TRUE(infeasible.empty());
    }
    return order;
}

TEST(RequestQueueSlo, ExpiredOnArrivalIsRefusedBeforeAdmission)
{
    RequestQueue q(2, ShedPolicy::DropOldest, 8);
    const uint64_t now = 1000;
    admit(q, req(now + 50), now);
    admit(q, req(now + 60), now);  // Queue now full.

    // An expired newcomer is refused up front — and must NOT evict a
    // viable waiter under DropOldest (it could never be served anyway).
    InferenceRequest dead = req(now);  // deadline <= now.
    InferenceRequest evicted;
    bool has_evicted = false;
    EXPECT_EQ(q.push(dead, now, evicted, has_evicted),
              RequestQueue::Push::Expired);
    EXPECT_FALSE(has_evicted);
    EXPECT_EQ(q.size(), 2u);
}

TEST(RequestQueueSlo, EdfWithinClassFifoAtEqualDeadlines)
{
    RequestQueue q(16, ShedPolicy::RejectNew, 8);
    const uint64_t now = 1000;
    // Arrival order: 300, 100, 0 (none), 200, 200, 100.
    admit(q, req(now + 300), now);
    admit(q, req(now + 100, Priority::Normal, 2), now);  // First at 100.
    admit(q, req(0), now);  // Deadline-less sorts after every deadline.
    admit(q, req(now + 200, Priority::Normal, 3), now);  // First at 200.
    admit(q, req(now + 200, Priority::Normal, 4), now);  // Second at 200.
    admit(q, req(now + 100, Priority::Normal, 5), now);  // Second at 100.

    std::vector<InferenceRequest> out, infeasible;
    q.pop_batch(out, infeasible, 1000, now, 0);
    ASSERT_EQ(out.size(), 6u);
    // EDF order; FIFO (admission seq) breaks the 100/100 and 200/200
    // ties; the deadline-less request comes last.
    const std::vector<uint64_t> want_deadline = {
        now + 100, now + 100, now + 200, now + 200, now + 300, 0};
    const std::vector<int> want_samples = {2, 5, 3, 4, 1, 1};
    for (size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].deadline_us, want_deadline[i]) << i;
        EXPECT_EQ(out[i].samples, want_samples[i]) << i;
    }
}

TEST(RequestQueueSlo, StrictPriorityWithStarvationBound)
{
    // starvation_limit = 2: Low may be passed over twice, then wins.
    RequestQueue q(32, ShedPolicy::RejectNew, 2);
    const uint64_t now = 1000;
    for (int i = 0; i < 6; ++i)
        admit(q, req(now + 100 + static_cast<uint64_t>(i), Priority::High),
              now);
    admit(q, req(now + 1, Priority::Low), now);
    admit(q, req(now + 2, Priority::Low), now);

    std::vector<InferenceRequest> out, infeasible;
    std::vector<Priority> picks;
    while (!q.empty()) {
        out.clear();
        infeasible.clear();
        q.pop_batch(out, infeasible, 1, now, 0);
        ASSERT_EQ(out.size(), 1u);
        picks.push_back(out[0].priority);
    }
    // High, High, then the starved Low breaks through; repeat; the
    // tail is the remaining High requests.
    const std::vector<Priority> want = {
        Priority::High, Priority::High, Priority::Low,
        Priority::High, Priority::High, Priority::Low,
        Priority::High, Priority::High};
    EXPECT_EQ(picks, want);
}

TEST(RequestQueueSlo, InfeasibleDeadlinesShedAtPopNeverServed)
{
    RequestQueue q(16, ShedPolicy::RejectNew, 8);
    const uint64_t now = 1000;
    admit(q, req(now + 50), now);   // Infeasible under estimate 100.
    admit(q, req(now + 500), now);  // Feasible.
    admit(q, req(0), now);          // No deadline: always feasible.

    std::vector<InferenceRequest> out, infeasible;
    q.pop_batch(out, infeasible, 1000, now, /*estimate_us=*/100);
    ASSERT_EQ(infeasible.size(), 1u);
    EXPECT_EQ(infeasible[0].deadline_us, now + 50);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].deadline_us, now + 500);
    EXPECT_EQ(out[1].deadline_us, 0u);
}

TEST(RequestQueueSlo, DropOldestEvictsEarliestAdmittedAcrossClasses)
{
    RequestQueue q(2, ShedPolicy::DropOldest, 8);
    const uint64_t now = 1000;
    admit(q, req(now + 10, Priority::High, 7), now);  // Oldest admitted.
    admit(q, req(now + 20, Priority::Low, 8), now);

    InferenceRequest incoming = req(now + 30, Priority::Normal, 9);
    InferenceRequest evicted;
    bool has_evicted = false;
    ASSERT_EQ(q.push(incoming, now, evicted, has_evicted),
              RequestQueue::Push::Admitted);
    ASSERT_TRUE(has_evicted);
    // The globally earliest-admitted waiter goes, regardless of class.
    EXPECT_EQ(evicted.samples, 7);
    EXPECT_EQ(q.size(), 2u);
}

TEST(RequestQueueSlo, DrainReturnsEveryClass)
{
    RequestQueue q(16, ShedPolicy::RejectNew, 8);
    const uint64_t now = 1000;
    admit(q, req(now + 10, Priority::High), now);
    admit(q, req(now + 10, Priority::Normal), now);
    admit(q, req(now + 10, Priority::Low), now);
    const auto leftovers = q.drain();
    EXPECT_EQ(leftovers.size(), 3u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.queued_rows(), 0);
}

// -------------------------------------------- batcher-level (threads) --

TEST(BatcherSlo, ExpiredRequestCompletesDeadlineExceededNeverExecutes)
{
    const Workload w = Workload::CnnMnist;
    const Dataset test = small_test_set(w, 4);
    ServeConfig cfg;
    cfg.workers = 1;
    ModelService ms(w, cfg);
    ms.publish(random_weights(w, 11));

    SubmitOptions dead;
    dead.deadline_us = ModelService::now_us() - 1;  // Already past.
    const InferenceReply r =
        ms.submit(test.batch_x({0}), true, dead).get();
    EXPECT_EQ(r.status, ReplyStatus::DeadlineExceeded);
    EXPECT_EQ(r.classes.size(), 0u);

    // ...while a generous deadline is served normally.
    SubmitOptions slack;
    slack.deadline_us = ModelService::now_us() + 10'000'000;
    EXPECT_TRUE(ms.submit(test.batch_x({1}), true, slack).get().ok());

    const ServeStats st = ms.serving_stats();
    EXPECT_EQ(st.submitted, 2u);
    EXPECT_EQ(st.deadline_shed, 1u);
    EXPECT_EQ(st.completed, 1u);
    // The expired request never reached the engine: exactly the served
    // row was batched.
    EXPECT_EQ(st.batched_rows, 1u);
}

TEST(BatcherSlo, LowPriorityProgressesUnderSustainedHighLoad)
{
    const Workload w = Workload::CnnMnist;
    const Dataset test = small_test_set(w, 8);
    ServeConfig cfg;
    cfg.workers = 1;          // One dispatcher: priorities truly compete.
    cfg.batch_size = 1;       // Every dispatch is one scheduling pick.
    cfg.batch_timeout_us = 0;
    cfg.queue_depth = 512;
    cfg.starvation_limit = 4;
    ModelService ms(w, cfg);
    ms.publish(random_weights(w, 13));

    // A generator keeps high-priority work queued until every
    // low-priority request has completed: without the starvation bound
    // the low futures would never resolve.
    std::atomic<bool> low_done{false};
    std::thread flood([&] {
        SubmitOptions high;
        high.priority = Priority::High;
        std::vector<std::future<InferenceReply>> inflight;
        while (!low_done.load()) {
            inflight.push_back(ms.submit(test.batch_x({0}), false, high));
            if (inflight.size() > 64) {  // Bound memory; keep queue warm.
                for (auto &f : inflight)
                    f.wait();
                inflight.clear();
            }
        }
        for (auto &f : inflight)
            f.wait();
    });

    SubmitOptions low;
    low.priority = Priority::Low;
    std::vector<std::future<InferenceReply>> lows;
    for (int i = 0; i < 4; ++i)
        lows.push_back(ms.submit(test.batch_x({i}), false, low));
    int served = 0;
    for (auto &f : lows) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "low-priority request starved";
        served += f.get().ok() ? 1 : 0;
    }
    low_done.store(true);
    flood.join();
    ms.stop_serving();
    EXPECT_EQ(served, 4);
}

// ----------------------------------------- gateway isolation (threads) --

TEST(GatewaySlo, OverloadedNeighborCannotStarveEntitledModel)
{
    const Workload w = Workload::CnnMnist;
    const Dataset test = small_test_set(w, 8);
    ServeConfig base;
    base.workers = 2;  // Shared pool; each model's guarantee is 1.
    ServeConfig per_model = base;
    per_model.batch_size = 1;
    per_model.batch_timeout_us = 0;
    per_model.queue_depth = 512;

    ModelService a(w, per_model), b(w, per_model);
    a.publish(random_weights(w, 21));
    b.publish(random_weights(w, 22));

    ServingGateway gw(base);
    gw.add_service("a", a, &per_model);
    gw.add_service("b", b, &per_model);
    gw.start();

    // Flood B until A's requests are done: with weighted slot sharing A
    // keeps its guaranteed dispatcher, so its requests complete while
    // B's backlog persists.
    std::atomic<bool> a_done{false};
    std::atomic<int> b_submitted{0};
    std::thread flood([&] {
        std::vector<std::future<InferenceReply>> inflight;
        while (!a_done.load()) {
            inflight.push_back(gw.submit("b", test.batch_x({0})));
            b_submitted.fetch_add(1);
            if (inflight.size() > 64) {
                for (auto &f : inflight)
                    f.wait();
                inflight.clear();
            }
        }
        for (auto &f : inflight)
            f.wait();
    });
    // Let B build a real backlog before A's traffic arrives.
    while (b_submitted.load() < 32)
        std::this_thread::yield();

    std::vector<std::future<InferenceReply>> as;
    for (int i = 0; i < 8; ++i)
        as.push_back(gw.submit("a", test.batch_x({i}), true));
    int served = 0;
    for (auto &f : as) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "model A starved by overloaded neighbor";
        served += f.get().ok() ? 1 : 0;
    }
    a_done.store(true);
    flood.join();

    EXPECT_EQ(served, 8);
    const ServeStats sa = gw.stats("a");
    EXPECT_EQ(sa.completed, 8u);
    EXPECT_EQ(sa.shed, 0u);
    EXPECT_GT(gw.stats("b").completed, 0u);
    gw.stop_serving();
}

} // namespace
} // namespace autofl
