/** @file RNG determinism and distribution-quality tests. */
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace autofl {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng root(7);
    Rng c1 = root.fork(1);
    Rng c2 = root.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (c1() == c2())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    RunningStat st;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        st.add(u);
    }
    EXPECT_NEAR(st.mean(), 0.5, 0.02);
    EXPECT_NEAR(st.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRange)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

class RandintTest : public ::testing::TestWithParam<std::pair<int64_t, int64_t>>
{
};

TEST_P(RandintTest, StaysInBoundsAndHitsAll)
{
    const auto [lo, hi] = GetParam();
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        const int64_t v = rng.randint(lo, hi);
        ASSERT_GE(v, lo);
        ASSERT_LE(v, hi);
        seen.insert(v);
    }
    if (hi - lo < 20)
        EXPECT_EQ(static_cast<int64_t>(seen.size()), hi - lo + 1);
}

INSTANTIATE_TEST_SUITE_P(Ranges, RandintTest,
                         ::testing::Values(std::pair<int64_t, int64_t>{0, 0},
                                           std::pair<int64_t, int64_t>{0, 1},
                                           std::pair<int64_t, int64_t>{-5, 5},
                                           std::pair<int64_t, int64_t>{0, 199},
                                           std::pair<int64_t, int64_t>{10, 13}));

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    RunningStat st;
    for (int i = 0; i < 30000; ++i)
        st.add(rng.normal());
    EXPECT_NEAR(st.mean(), 0.0, 0.03);
    EXPECT_NEAR(st.stddev(), 1.0, 0.03);
}

TEST(Rng, NormalShifted)
{
    Rng rng(12);
    RunningStat st;
    for (int i = 0; i < 20000; ++i)
        st.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(st.mean(), 10.0, 0.1);
    EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GammaMeanMatchesShape)
{
    // Gamma(k, 1) has mean k and variance k.
    for (double shape : {0.1, 0.5, 1.0, 3.0}) {
        Rng rng(static_cast<uint64_t>(shape * 1000) + 17);
        RunningStat st;
        for (int i = 0; i < 20000; ++i)
            st.add(rng.gamma(shape));
        EXPECT_NEAR(st.mean(), shape, 0.1 * std::max(1.0, shape))
            << "shape " << shape;
    }
}

TEST(Rng, DirichletSumsToOne)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        auto p = rng.dirichlet(0.1, 10);
        double sum = 0.0;
        for (double v : p) {
            ASSERT_GE(v, 0.0);
            sum += v;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(Rng, DirichletLowConcentrationIsPeaked)
{
    // alpha = 0.1 (the paper's value) should concentrate most mass on
    // one or two classes; alpha = 100 should be near-uniform.
    Rng rng(21);
    RunningStat peaked, flat;
    for (int i = 0; i < 200; ++i) {
        auto a = rng.dirichlet(0.1, 10);
        peaked.add(*std::max_element(a.begin(), a.end()));
        auto b = rng.dirichlet(100.0, 10);
        flat.add(*std::max_element(b.begin(), b.end()));
    }
    EXPECT_GT(peaked.mean(), 0.6);
    EXPECT_LT(flat.mean(), 0.2);
}

TEST(Rng, CategoricalFollowsWeights)
{
    Rng rng(23);
    std::vector<double> w = {1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 30000; ++i)
        ++counts[static_cast<size_t>(rng.categorical(w))];
    EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
    EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
    EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(29);
    std::vector<int> v(50);
    for (int i = 0; i < 50; ++i)
        v[static_cast<size_t>(i)] = i;
    auto sorted = v;
    rng.shuffle(v);
    EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(ClientSeed, DeterministicInJobIdentity)
{
    EXPECT_EQ(client_seed(1, 5, 3), client_seed(1, 5, 3));
    Rng a = client_rng(1, 5, 3);
    Rng b = client_rng(1, 5, 3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a(), b());
}

TEST(ClientSeed, EveryIdentityComponentMatters)
{
    const uint64_t base = client_seed(1, 5, 3);
    EXPECT_NE(base, client_seed(2, 5, 3));  // global seed
    EXPECT_NE(base, client_seed(1, 6, 3));  // device
    EXPECT_NE(base, client_seed(1, 5, 4));  // round
}

TEST(ClientSeed, NoCollisionsAcrossDevicesAndRounds)
{
    // A fleet's worth of (device, round) jobs under one global seed
    // must get distinct streams.
    std::set<uint64_t> seen;
    for (int dev = 0; dev < 200; ++dev)
        for (uint64_t round = 0; round < 60; ++round)
            seen.insert(client_seed(42, dev, round));
    EXPECT_EQ(seen.size(), 200u * 60u);
}

} // namespace
} // namespace autofl
