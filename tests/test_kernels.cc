/**
 * @file
 * Kernel-dispatch backend tests: scalar/SIMD parity, reduction-order
 * determinism, seed-loop bit-compatibility and im2col round trips.
 *
 * Contract under test (src/kernels/README.md): per variant, results are
 * bitwise deterministic; the scalar GEMM variants are bit-identical to
 * the seed triple loops; elementwise kernels are bit-identical across
 * ALL variants; GEMM/conv variants agree within 1e-4 relative.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "fl/aggregation.h"
#include "kernels/kernels.h"
#include "nn/conv2d.h"
#include "nn/lstm.h"
#include "util/rng.h"

namespace autofl {
namespace {

using kernels::KernelArch;

/** Restores the entry arch when a test is done flipping variants. */
struct ArchGuard
{
    KernelArch saved = kernels::current_kernel_arch();
    ~ArchGuard() { kernels::set_kernel_arch(saved); }
};

bool
has_simd()
{
    return kernels::best_kernel_arch() != KernelArch::Scalar;
}

std::vector<float>
random_vec(size_t n, Rng &rng)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1, 1));
    return v;
}

/** The seed's matmul triple loop (pre-kernel reference). */
void
seed_matmul(int m, int n, int k, const float *pa, const float *pb, float *po)
{
    for (int i = 0; i < m; ++i) {
        for (int kk = 0; kk < k; ++kk) {
            const float av = pa[static_cast<size_t>(i) * k + kk];
            if (av == 0.0f)
                continue;
            const float *brow = pb + static_cast<size_t>(kk) * n;
            float *orow = po + static_cast<size_t>(i) * n;
            for (int j = 0; j < n; ++j)
                orow[j] += av * brow[j];
        }
    }
}

void
expect_rel_close(const std::vector<float> &a, const std::vector<float> &b,
                 double rel_tol, const char *what)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const double denom = std::max(
            {1.0, std::abs(static_cast<double>(a[i])),
             std::abs(static_cast<double>(b[i]))});
        EXPECT_NEAR(a[i] / denom, b[i] / denom, rel_tol)
            << what << " index " << i;
    }
}

struct GemmShape
{
    int m, k, n;
};

class GemmParityTest : public ::testing::TestWithParam<GemmShape>
{
};

/** Scalar variant reproduces the seed loop bit-for-bit. */
TEST_P(GemmParityTest, ScalarMatchesSeedLoopBitwise)
{
    ArchGuard guard;
    const auto [m, k, n] = GetParam();
    Rng rng(42);
    const auto a = random_vec(static_cast<size_t>(m) * k, rng);
    const auto b = random_vec(static_cast<size_t>(k) * n, rng);

    std::vector<float> ref(static_cast<size_t>(m) * n, 0.0f);
    seed_matmul(m, n, k, a.data(), b.data(), ref.data());

    kernels::set_kernel_arch(KernelArch::Scalar);
    std::vector<float> out(static_cast<size_t>(m) * n, -1.0f);
    kernels::gemm(m, n, k, a.data(), k, b.data(), n, out.data(), n);
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(ref[i], out[i]) << "index " << i;
}

/** Scalar and SIMD variants agree within 1e-4 relative, all 3 GEMMs. */
TEST_P(GemmParityTest, VariantsAgreeWithinTolerance)
{
    ArchGuard guard;
    const auto [m, k, n] = GetParam();
    Rng rng(43);
    const auto a = random_vec(static_cast<size_t>(m) * k, rng);
    const auto at = random_vec(static_cast<size_t>(k) * m, rng);
    const auto b = random_vec(static_cast<size_t>(k) * n, rng);
    const auto bt = random_vec(static_cast<size_t>(n) * k, rng);

    const size_t out_n = static_cast<size_t>(m) * n;
    std::vector<float> s_nn(out_n), s_tn(out_n), s_nt(out_n);
    std::vector<float> v_nn(out_n), v_tn(out_n), v_nt(out_n);

    kernels::set_kernel_arch(KernelArch::Scalar);
    kernels::gemm(m, n, k, a.data(), k, b.data(), n, s_nn.data(), n);
    kernels::gemm_tn(m, n, k, at.data(), m, b.data(), n, s_tn.data(), n);
    kernels::gemm_nt(m, n, k, a.data(), k, bt.data(), k, s_nt.data(), n);

    kernels::set_kernel_arch(kernels::best_kernel_arch());
    kernels::gemm(m, n, k, a.data(), k, b.data(), n, v_nn.data(), n);
    kernels::gemm_tn(m, n, k, at.data(), m, b.data(), n, v_tn.data(), n);
    kernels::gemm_nt(m, n, k, a.data(), k, bt.data(), k, v_nt.data(), n);

    expect_rel_close(s_nn, v_nn, 1e-4, "gemm");
    expect_rel_close(s_tn, v_tn, 1e-4, "gemm_tn");
    expect_rel_close(s_nt, v_nt, 1e-4, "gemm_nt");
}

/** Same inputs, same variant -> bitwise identical output, twice. */
TEST_P(GemmParityTest, DeterministicPerVariant)
{
    ArchGuard guard;
    const auto [m, k, n] = GetParam();
    Rng rng(44);
    const auto a = random_vec(static_cast<size_t>(m) * k, rng);
    const auto b = random_vec(static_cast<size_t>(k) * n, rng);

    for (KernelArch arch : {KernelArch::Scalar, kernels::best_kernel_arch()}) {
        kernels::set_kernel_arch(arch);
        std::vector<float> o1(static_cast<size_t>(m) * n),
            o2(static_cast<size_t>(m) * n);
        kernels::gemm(m, n, k, a.data(), k, b.data(), n, o1.data(), n);
        kernels::gemm(m, n, k, a.data(), k, b.data(), n, o2.data(), n);
        for (size_t i = 0; i < o1.size(); ++i)
            ASSERT_EQ(o1[i], o2[i])
                << kernels::kernel_arch_name(arch) << " index " << i;
    }
}

/** Accumulate mode adds the product on top of the existing C. */
TEST_P(GemmParityTest, AccumulateAddsOnTop)
{
    ArchGuard guard;
    const auto [m, k, n] = GetParam();
    Rng rng(45);
    const auto a = random_vec(static_cast<size_t>(m) * k, rng);
    const auto b = random_vec(static_cast<size_t>(k) * n, rng);
    const auto base = random_vec(static_cast<size_t>(m) * n, rng);

    for (KernelArch arch : {KernelArch::Scalar, kernels::best_kernel_arch()}) {
        kernels::set_kernel_arch(arch);
        std::vector<float> fresh(static_cast<size_t>(m) * n);
        kernels::gemm(m, n, k, a.data(), k, b.data(), n, fresh.data(), n);
        std::vector<float> acc = base;
        kernels::gemm(m, n, k, a.data(), k, b.data(), n, acc.data(), n,
                      /*accumulate=*/true);
        for (size_t i = 0; i < acc.size(); ++i)
            EXPECT_NEAR(acc[i], base[i] + fresh[i], 2e-5)
                << kernels::kernel_arch_name(arch) << " index " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParityTest,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{2, 3, 5},
                      GemmShape{4, 16, 16}, GemmShape{5, 7, 9},
                      GemmShape{8, 32, 17}, GemmShape{16, 64, 33},
                      GemmShape{3, 128, 40}, GemmShape{13, 21, 121},
                      GemmShape{32, 48, 64}));

/** Elementwise kernels are bit-identical across every variant. */
TEST(ElementwiseParity, BitIdenticalAcrossVariants)
{
    if (!has_simd())
        GTEST_SKIP() << "no SIMD variant on this CPU";
    ArchGuard guard;
    Rng rng(46);
    const size_t n = 1003;  // Odd size: exercises the vector tails.
    const auto x = random_vec(n, rng);
    const auto y0 = random_vec(n, rng);
    const auto anchor = random_vec(n, rng);

    auto run_all = [&](KernelArch arch) {
        kernels::set_kernel_arch(arch);
        std::vector<float> y = y0, v(n, 0.1f), w = y0;
        std::vector<uint8_t> mask(n);
        std::vector<double> acc(n, 0.25);
        kernels::axpy(n, 0.37f, x.data(), y.data());
        kernels::scale(n, -1.21f, y.data());
        kernels::vadd(n, x.data(), y.data());
        kernels::vsub(n, y0.data(), y.data());
        kernels::add_bias_rows(17, 59, x.data(), y.data());
        kernels::accumulate_rows(17, 59, x.data(), y.data());
        kernels::relu_forward(n, y.data(), mask.data());
        kernels::relu_backward(n, mask.data(), y.data());
        kernels::sgd_step(n, w.data(), x.data(), v.data(), 0.05f, 1e-4f,
                          0.9f);
        kernels::sgd_step_prox(n, w.data(), x.data(), v.data(),
                               anchor.data(), 0.05f, 1e-4f, 0.9f, 0.01f);
        kernels::axpy_f64(n, 0.125, x.data(), acc.data());
        kernels::diff_axpy_f64(n, 0.5, w.data(), x.data(), acc.data());
        std::vector<float> cast(n);
        kernels::cast_f64_to_f32(n, acc.data(), cast.data());
        kernels::apply_step_f64(n, w.data(), 0.75, acc.data());
        return std::tuple{y, w, v, mask, acc, cast};
    };

    const auto scalar = run_all(KernelArch::Scalar);
    const auto simd = run_all(kernels::best_kernel_arch());
    EXPECT_EQ(std::get<0>(scalar), std::get<0>(simd));
    EXPECT_EQ(std::get<1>(scalar), std::get<1>(simd));
    EXPECT_EQ(std::get<2>(scalar), std::get<2>(simd));
    EXPECT_EQ(std::get<3>(scalar), std::get<3>(simd));
    EXPECT_EQ(std::get<4>(scalar), std::get<4>(simd));
    EXPECT_EQ(std::get<5>(scalar), std::get<5>(simd));
}

/** fedavg / fednova combine bits cannot depend on the variant. */
TEST(AggregationParity, FedAvgAndFedNovaBitIdentical)
{
    if (!has_simd())
        GTEST_SKIP() << "no SIMD variant on this CPU";
    ArchGuard guard;
    Rng rng(47);
    const size_t dim = 517;
    std::vector<LocalUpdate> updates(3);
    for (size_t j = 0; j < updates.size(); ++j) {
        updates[j].weights = random_vec(dim, rng);
        updates[j].num_samples = static_cast<int>(10 + 5 * j);
        updates[j].num_steps = static_cast<int>(1 + j);
    }

    kernels::set_kernel_arch(KernelArch::Scalar);
    double lambda_s = 0.0;
    const auto avg_s = fedavg_combine(updates, nullptr, &lambda_s);
    auto nova_s = random_vec(dim, rng);
    const auto nova_seed = nova_s;
    fednova_apply(nova_s, updates, nullptr);

    kernels::set_kernel_arch(kernels::best_kernel_arch());
    double lambda_v = 0.0;
    const auto avg_v = fedavg_combine(updates, nullptr, &lambda_v);
    auto nova_v = nova_seed;
    fednova_apply(nova_v, updates, nullptr);

    EXPECT_EQ(avg_s, avg_v);
    EXPECT_EQ(nova_s, nova_v);
    EXPECT_EQ(lambda_s, lambda_v);
}

struct ConvShape
{
    int batch, in_ch, out_ch, side, kernel, stride, pad, groups;
};

class ConvParityTest : public ::testing::TestWithParam<ConvShape>
{
};

/** Conv forward/backward agree across variants within tolerance. */
TEST_P(ConvParityTest, ForwardBackwardParity)
{
    ArchGuard guard;
    const auto c = GetParam();

    auto run = [&](KernelArch arch) {
        kernels::set_kernel_arch(arch);
        Conv2D layer(c.in_ch, c.out_ch, c.kernel, c.stride, c.pad,
                     c.groups);
        Rng rng(48);
        layer.init_weights(rng);
        Tensor x({c.batch, c.in_ch, c.side, c.side});
        for (size_t i = 0; i < x.size(); ++i)
            x[i] = static_cast<float>(rng.uniform(-1, 1));
        Tensor y = layer.forward(x);
        layer.zero_grad();
        Tensor dy = y;  // Arbitrary smooth upstream gradient.
        Tensor dx = layer.backward(dy);
        std::vector<float> flat(y.vec().begin(), y.vec().end());
        flat.insert(flat.end(), dx.vec().begin(), dx.vec().end());
        for (Tensor *g : layer.grads())
            flat.insert(flat.end(), g->vec().begin(), g->vec().end());
        return flat;
    };

    const auto scalar = run(KernelArch::Scalar);
    const auto simd = run(kernels::best_kernel_arch());
    expect_rel_close(scalar, simd, 1e-4, "conv");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvParityTest,
    ::testing::Values(ConvShape{2, 3, 4, 9, 3, 1, 1, 1},
                      ConvShape{1, 4, 8, 8, 1, 1, 0, 1},   // pointwise
                      ConvShape{2, 4, 4, 7, 3, 1, 1, 4},   // depthwise
                      ConvShape{1, 6, 6, 10, 3, 2, 1, 2},  // strided group
                      ConvShape{3, 1, 2, 12, 5, 2, 2, 1}));

/** LSTM forward/backward agree across variants within tolerance. */
TEST(LstmParity, ForwardBackwardParity)
{
    ArchGuard guard;

    auto run = [&](KernelArch arch, bool seq) {
        kernels::set_kernel_arch(arch);
        Lstm layer(5, 7, seq);
        Rng rng(49);
        layer.init_weights(rng);
        Tensor x({4, 3, 5});
        for (size_t i = 0; i < x.size(); ++i)
            x[i] = static_cast<float>(rng.uniform(-1, 1));
        Tensor y = layer.forward(x);
        layer.zero_grad();
        Tensor dx = layer.backward(y);
        std::vector<float> flat(y.vec().begin(), y.vec().end());
        flat.insert(flat.end(), dx.vec().begin(), dx.vec().end());
        for (Tensor *g : layer.grads())
            flat.insert(flat.end(), g->vec().begin(), g->vec().end());
        return flat;
    };

    for (bool seq : {false, true}) {
        const auto scalar = run(KernelArch::Scalar, seq);
        const auto simd = run(kernels::best_kernel_arch(), seq);
        expect_rel_close(scalar, simd, 1e-4,
                         seq ? "lstm-seq" : "lstm-last");
    }
}

/** im2col of a 1x1/s1/p0 conv is the identity; col2im inverts it. */
TEST(Im2Col, PointwiseIdentityAndRoundTrip)
{
    Rng rng(50);
    const int ch = 3, ih = 5, iw = 4;
    const auto x = random_vec(static_cast<size_t>(ch) * ih * iw, rng);
    std::vector<float> col(x.size(), 0.0f);
    kernels::im2col(x.data(), ch, ih, iw, 1, 1, 0, col.data());
    EXPECT_EQ(std::vector<float>(col.begin(), col.end()), x);

    // col2im_add of an im2col'ed buffer counts each input tap once per
    // kernel window covering it; for k=1 that is exactly once.
    std::vector<float> back(x.size(), 0.0f);
    kernels::col2im_add(col.data(), ch, ih, iw, 1, 1, 0, back.data());
    EXPECT_EQ(back, x);
}

/** Padded taps in the column buffer are exact zeros. */
TEST(Im2Col, PaddingIsZero)
{
    Rng rng(51);
    const int ch = 1, ih = 3, iw = 3, k = 3, pad = 1;
    std::vector<float> x(9);
    for (auto &v : x)
        v = 1.0f + static_cast<float>(rng.uniform(0, 1));
    std::vector<float> col(static_cast<size_t>(k) * k * 9, -1.0f);
    kernels::im2col(x.data(), ch, ih, iw, k, 1, pad, col.data());
    // Top-left output pixel, top-left kernel tap reads x[-1,-1]: zero.
    EXPECT_EQ(col[0], 0.0f);
    // Center tap (ky=1, kx=1) at output (0,0) is x[0,0]: no padding.
    EXPECT_EQ(col[(1 * 3 + 1) * 9 + 0], x[0]);
}

/** The env override is visible through the arch API. */
TEST(ArchSelection, SetArchClampsAndReports)
{
    ArchGuard guard;
    EXPECT_EQ(kernels::set_kernel_arch(KernelArch::Scalar),
              KernelArch::Scalar);
    EXPECT_EQ(kernels::current_kernel_arch(), KernelArch::Scalar);
    // A supported request installs exactly that variant; an unsupported
    // one clamps to the widest the box can run — never a crash.
    for (KernelArch arch : {KernelArch::Neon, KernelArch::Avx2,
                            KernelArch::Avx512}) {
        const KernelArch got = kernels::set_kernel_arch(arch);
        if (kernels::kernel_arch_supported(arch))
            EXPECT_EQ(got, arch) << kernels::kernel_arch_name(arch);
        else
            EXPECT_EQ(got, kernels::best_kernel_arch())
                << kernels::kernel_arch_name(arch);
        EXPECT_EQ(kernels::current_kernel_arch(), got);
    }
}

/**
 * AUTOFL_KERNEL_ARCH resolution never crashes: unknown names, empty
 * and null requests, and ISA requests the box cannot honor (e.g.
 * "avx512" on a non-AVX-512 host, "neon" on x86) all fall back to the
 * best supported variant.
 */
TEST(ArchSelection, EnvResolutionFallsBackToBest)
{
    const KernelArch best = kernels::best_kernel_arch();
    EXPECT_EQ(kernels::resolve_kernel_arch_request(nullptr), best);
    EXPECT_EQ(kernels::resolve_kernel_arch_request(""), best);
    EXPECT_EQ(kernels::resolve_kernel_arch_request("auto"), best);
    EXPECT_EQ(kernels::resolve_kernel_arch_request("best"), best);
    EXPECT_EQ(kernels::resolve_kernel_arch_request("sse9000"), best);
    EXPECT_EQ(kernels::resolve_kernel_arch_request("AVX2 "), best);
    for (KernelArch arch : {KernelArch::Scalar, KernelArch::Neon,
                            KernelArch::Avx2, KernelArch::Avx512}) {
        const KernelArch got = kernels::resolve_kernel_arch_request(
            kernels::kernel_arch_name(arch));
        if (kernels::kernel_arch_supported(arch))
            EXPECT_EQ(got, arch) << kernels::kernel_arch_name(arch);
        else
            EXPECT_EQ(got, best) << kernels::kernel_arch_name(arch);
    }
}

/** Every advertised variant actually installs and computes. */
TEST(ArchSelection, SupportedArchsAllRun)
{
    ArchGuard guard;
    const auto archs = kernels::supported_kernel_archs();
    ASSERT_FALSE(archs.empty());
    EXPECT_EQ(archs.front(), KernelArch::Scalar);
    EXPECT_EQ(archs.back(), kernels::best_kernel_arch());
    for (KernelArch arch : archs) {
        ASSERT_EQ(kernels::set_kernel_arch(arch), arch);
        const float a = 2.0f, b = 3.0f;
        float out = -1.0f;
        kernels::gemm(1, 1, 1, &a, 1, &b, 1, &out, 1);
        EXPECT_EQ(out, 6.0f) << kernels::kernel_arch_name(arch);
    }
}

/**
 * Each kernel family honors the parity tier its table declares:
 * `exact` families must match the scalar baseline bit-for-bit, and
 * `tolerance` families within 1e-4 relative — for EVERY variant the box
 * can run, not just the widest.
 */
TEST(ParityTier, FamiliesHonorDeclaredTier)
{
    ArchGuard guard;
    Rng rng(52);
    const int m = 17, k = 67, n = 33;
    const auto a = random_vec(static_cast<size_t>(m) * k, rng);
    const auto b = random_vec(static_cast<size_t>(k) * n, rng);
    const size_t vn = 515;
    const auto x = random_vec(vn, rng);
    const int batch = 5, hidden = 19;
    const auto z0 = random_vec(static_cast<size_t>(batch) * 4 * hidden, rng);
    const auto cp = random_vec(static_cast<size_t>(batch) * hidden, rng);

    kernels::set_kernel_arch(KernelArch::Scalar);
    std::vector<float> gemm_ref(static_cast<size_t>(m) * n);
    kernels::gemm(m, n, k, a.data(), k, b.data(), n, gemm_ref.data(), n);
    std::vector<float> axpy_ref = x;
    kernels::axpy(vn, 0.37f, x.data(), axpy_ref.data());
    const float amax_ref = kernels::absmax(vn, x.data());
    std::vector<int8_t> q_ref(vn);
    kernels::quantize_i8(vn, x.data(), 127.0f / amax_ref, q_ref.data());
    std::vector<float> z_ref = z0;
    std::vector<float> c_ref(static_cast<size_t>(batch) * hidden);
    std::vector<float> h_ref(c_ref.size());
    kernels::lstm_gate_forward(batch, hidden, z_ref.data(), cp.data(),
                               c_ref.data(), h_ref.data(), hidden);

    for (KernelArch arch : kernels::supported_kernel_archs()) {
        kernels::set_kernel_arch(arch);
        const kernels::KernelParity &tier = kernels::kernel_parity(arch);
        const char *name = kernels::kernel_arch_name(arch);

        std::vector<float> gemm_v(gemm_ref.size());
        kernels::gemm(m, n, k, a.data(), k, b.data(), n, gemm_v.data(), n);
        if (tier.gemm == kernels::ParityTier::Exact)
            EXPECT_EQ(gemm_ref, gemm_v) << name;
        else
            expect_rel_close(gemm_ref, gemm_v, 1e-4, name);

        // The elementwise and codec families are Exact on every table
        // shipped today; a future Tolerance-tier table would relax the
        // assertion here rather than silently failing.
        std::vector<float> axpy_v = x;
        kernels::axpy(vn, 0.37f, x.data(), axpy_v.data());
        std::vector<int8_t> q_v(vn);
        kernels::quantize_i8(vn, x.data(), 127.0f / amax_ref, q_v.data());
        ASSERT_EQ(tier.elementwise, kernels::ParityTier::Exact) << name;
        ASSERT_EQ(tier.codec, kernels::ParityTier::Exact) << name;
        EXPECT_EQ(axpy_ref, axpy_v) << name;
        EXPECT_EQ(amax_ref, kernels::absmax(vn, x.data())) << name;
        EXPECT_EQ(q_ref, q_v) << name;

        std::vector<float> z_v = z0, c_v(c_ref.size()), h_v(h_ref.size());
        kernels::lstm_gate_forward(batch, hidden, z_v.data(), cp.data(),
                                   c_v.data(), h_v.data(), hidden);
        if (tier.transcendental == kernels::ParityTier::Exact) {
            EXPECT_EQ(z_ref, z_v) << name;
            EXPECT_EQ(h_ref, h_v) << name;
        } else {
            expect_rel_close(z_ref, z_v, 1e-4, name);
            expect_rel_close(h_ref, h_v, 1e-4, name);
        }
    }
}

/**
 * Force the packed-panel driver across ragged shapes straddling the
 * 6x16 and 8x32 register tiles (MR-1/MR/MR+1 and the NR edges, plus a
 * large-prime K that never divides the kc blocks) and check it against
 * the scalar reference in both accumulate modes, for all three operand
 * layouts.
 */
TEST(PackedGemmPath, RaggedShapesMatchScalar)
{
    if (!has_simd())
        GTEST_SKIP() << "no SIMD variant on this CPU";
    ArchGuard guard;
    const kernels::GemmPath saved =
        kernels::set_gemm_path(kernels::GemmPath::Packed);
    const int ms[] = {1, 5, 6, 7, 8, 9, 33};
    const int ns[] = {1, 15, 16, 17, 31, 32, 33};
    const int ks[] = {1, 48, 509};
    Rng rng(53);
    for (int m : ms) {
        for (int n : ns) {
            for (int k : ks) {
                const auto a = random_vec(static_cast<size_t>(m) * k, rng);
                const auto at = random_vec(static_cast<size_t>(k) * m, rng);
                const auto b = random_vec(static_cast<size_t>(k) * n, rng);
                const auto bt = random_vec(static_cast<size_t>(n) * k, rng);
                const auto base = random_vec(static_cast<size_t>(m) * n,
                                             rng);
                for (bool acc : {false, true}) {
                    auto run = [&](KernelArch arch) {
                        kernels::set_kernel_arch(arch);
                        std::vector<float> nn = base, tn = base, nt = base;
                        kernels::gemm(m, n, k, a.data(), k, b.data(), n,
                                      nn.data(), n, acc);
                        kernels::gemm_tn(m, n, k, at.data(), m, b.data(), n,
                                         tn.data(), n, acc);
                        kernels::gemm_nt(m, n, k, a.data(), k, bt.data(), k,
                                         nt.data(), n, acc);
                        nn.insert(nn.end(), tn.begin(), tn.end());
                        nn.insert(nn.end(), nt.begin(), nt.end());
                        return nn;
                    };
                    const auto s = run(KernelArch::Scalar);
                    const auto v = run(kernels::best_kernel_arch());
                    expect_rel_close(s, v, 1e-4, "packed gemm");
                    if (::testing::Test::HasFailure())
                        FAIL() << "shape m=" << m << " n=" << n
                               << " k=" << k << " acc=" << acc;
                }
            }
        }
    }
    kernels::set_gemm_path(saved);
}

/**
 * Prepacked operand handles reproduce the dispatcher: bit-identically
 * where the handle degraded to a contiguous copy (scalar arch), within
 * the gemm tolerance tier where it panel-packed — including the
 * transposed gathers that serve the gemm_tn / gemm_nt call sites.
 */
TEST(PackedGemmPath, PrepackedOperandsMatchGemm)
{
    ArchGuard guard;
    Rng rng(54);
    const int m = 37, k = 129, n = 53;
    const auto a = random_vec(static_cast<size_t>(m) * k, rng);
    const auto at = random_vec(static_cast<size_t>(k) * m, rng);
    const auto b = random_vec(static_cast<size_t>(k) * n, rng);
    const auto bt = random_vec(static_cast<size_t>(n) * k, rng);
    const auto base = random_vec(static_cast<size_t>(m) * n, rng);

    for (KernelArch arch : kernels::supported_kernel_archs()) {
        kernels::set_kernel_arch(arch);
        const char *name = kernels::kernel_arch_name(arch);
        auto check = [&](const std::vector<float> &ref,
                         const std::vector<float> &got, bool packed) {
            if (packed)
                expect_rel_close(ref, got, 1e-4, name);
            else
                EXPECT_EQ(ref, got) << name;
        };

        for (bool acc : {false, true}) {
            std::vector<float> ref = base, got = base;

            const auto pa = kernels::pack_gemm_a(m, k, a.data(), k);
            EXPECT_EQ(pa.rows(), m);
            EXPECT_EQ(pa.cols(), k);
            EXPECT_EQ(pa.packed(), arch != KernelArch::Scalar);
            kernels::gemm(m, n, k, a.data(), k, b.data(), n, ref.data(), n,
                          acc);
            kernels::gemm_packed_a(pa, n, b.data(), n, got.data(), n, acc);
            check(ref, got, pa.packed());

            const auto pat =
                kernels::pack_gemm_a(m, k, at.data(), m, true);
            ref = base;
            got = base;
            kernels::gemm_tn(m, n, k, at.data(), m, b.data(), n, ref.data(),
                             n, acc);
            kernels::gemm_packed_a(pat, n, b.data(), n, got.data(), n, acc);
            check(ref, got, pat.packed());

            const auto pb = kernels::pack_gemm_b(k, n, b.data(), n);
            EXPECT_EQ(pb.rows(), k);
            EXPECT_EQ(pb.cols(), n);
            ref = base;
            got = base;
            kernels::gemm(m, n, k, a.data(), k, b.data(), n, ref.data(), n,
                          acc);
            kernels::gemm_packed_b(m, a.data(), k, pb, got.data(), n, acc);
            check(ref, got, pb.packed());

            const auto pbt =
                kernels::pack_gemm_b(k, n, bt.data(), k, true);
            ref = base;
            got = base;
            kernels::gemm_nt(m, n, k, a.data(), k, bt.data(), k, ref.data(),
                             n, acc);
            kernels::gemm_packed_b(m, a.data(), k, pbt, got.data(), n, acc);
            // The transposed scalar copy-fallback reduces in the same
            // ascending-k order but accumulates separately, so it is
            // tolerance-class like the packed layouts.
            if (arch == KernelArch::Scalar)
                expect_rel_close(ref, got, 1e-5, name);
            else
                check(ref, got, pbt.packed());
        }
    }
}

} // namespace
} // namespace autofl
