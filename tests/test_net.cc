/**
 * @file
 * Distributed-transport tests (src/net/): wire-format hardening (every
 * message type round-trips; truncated, oversized, wrong-magic,
 * wrong-version and wrong-type frames are rejected with typed statuses
 * — no crash, no hang), Van endpoints (loopback FIFO semantics, Unix
 * and TCP sockets, garbage bytes on a live socket), Postoffice
 * membership/routing, Monitor failure detection, and the cluster
 * runtime's two headline guarantees: a loopback cluster at
 * SemiAsync(S=0) reproduces the synchronous weights bit for bit, and a
 * worker that dies mid-round costs its in-flight jobs (evicted through
 * the staleness accounting), never a hang.
 */
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "fl/fl_cluster.h"
#include "fl/system.h"
#include "harness/experiment.h"
#include "net/cluster.h"
#include "net/monitor.h"
#include "net/net_config.h"
#include "net/postoffice.h"
#include "net/van.h"
#include "net/wire.h"
#include "ps/compression.h"
#include "ps/sharded_store.h"

namespace autofl {
namespace {

using net::ClusterJob;
using net::ClusterServer;
using net::ClusterWorker;
using net::Listener;
using net::make_loopback_pair;
using net::Message;
using net::Monitor;
using net::MsgType;
using net::NetAddress;
using net::Postoffice;
using net::RecvStatus;
using net::Transport;
using net::WireStatus;
using net::WorkerJob;

// ---------------------------------------------------------- wire format --

/** A message exercising every payload section. */
Message
full_message(MsgType t)
{
    Message m;
    m.type = t;
    m.from = 3;
    m.round = 41;
    m.seq = 1234567890123ull;
    m.clock = 17;
    m.ints = {-5, 0, 2147483647};
    m.floats = {1.5f, -0.0f, 3.25e-7f, 1e30f};
    m.doubles = {0.125, -9e99};
    m.text = "diag";
    m.bytes = {0xde, 0xad, 0x00, 0x07};
    return m;
}

std::vector<MsgType>
all_msg_types()
{
    std::vector<MsgType> types;
    for (uint16_t t = net::kMinMsgType; t <= net::kMaxMsgType; ++t)
        types.push_back(static_cast<MsgType>(t));
    return types;
}

TEST(Wire, RoundTripsEveryMessageType)
{
    for (MsgType t : all_msg_types()) {
        const Message in = full_message(t);
        const std::vector<uint8_t> frame = net::frame_message(in);
        EXPECT_EQ(frame.size(), net::wire_frame_bytes(in));
        Message out;
        size_t consumed = 0;
        ASSERT_EQ(net::parse_frame(frame.data(), frame.size(), &out,
                                   &consumed),
                  WireStatus::Ok)
            << net::msg_type_name(t);
        EXPECT_EQ(consumed, frame.size());
        EXPECT_EQ(out.type, in.type);
        EXPECT_EQ(out.from, in.from);
        EXPECT_EQ(out.round, in.round);
        EXPECT_EQ(out.seq, in.seq);
        EXPECT_EQ(out.clock, in.clock);
        EXPECT_EQ(out.ints, in.ints);
        EXPECT_EQ(out.doubles, in.doubles);
        EXPECT_EQ(out.text, in.text);
        EXPECT_EQ(out.bytes, in.bytes);
        // Floats must survive bit-exact, not just approximately — the
        // determinism contract crosses the wire here.
        ASSERT_EQ(out.floats.size(), in.floats.size());
        for (size_t i = 0; i < in.floats.size(); ++i) {
            uint32_t a = 0, b = 0;
            std::memcpy(&a, &in.floats[i], 4);
            std::memcpy(&b, &out.floats[i], 4);
            EXPECT_EQ(a, b) << "float bits differ at " << i;
        }
    }
}

TEST(Wire, EmptySectionsRoundTrip)
{
    Message in;
    in.type = MsgType::Heartbeat;
    const std::vector<uint8_t> frame = net::frame_message(in);
    Message out;
    size_t consumed = 0;
    ASSERT_EQ(net::parse_frame(frame.data(), frame.size(), &out, &consumed),
              WireStatus::Ok);
    EXPECT_TRUE(out.ints.empty());
    EXPECT_TRUE(out.floats.empty());
    EXPECT_TRUE(out.doubles.empty());
    EXPECT_TRUE(out.text.empty());
    EXPECT_TRUE(out.bytes.empty());
}

TEST(Wire, EveryTruncationIsNeedMoreNeverACrash)
{
    const std::vector<uint8_t> frame =
        net::frame_message(full_message(MsgType::Push));
    for (size_t len = 0; len < frame.size(); ++len) {
        Message out;
        size_t consumed = 0;
        EXPECT_EQ(net::parse_frame(frame.data(), len, &out, &consumed),
                  WireStatus::NeedMore)
            << "prefix length " << len;
    }
}

TEST(Wire, RejectsBadMagic)
{
    std::vector<uint8_t> frame =
        net::frame_message(full_message(MsgType::Join));
    frame[0] ^= 0xFF;
    Message out;
    size_t consumed = 0;
    EXPECT_EQ(net::parse_frame(frame.data(), frame.size(), &out, &consumed),
              WireStatus::BadMagic);
}

TEST(Wire, RejectsBadVersion)
{
    std::vector<uint8_t> frame =
        net::frame_message(full_message(MsgType::Join));
    frame[4] = 0xEE;  // Version word (LE) at bytes 4-5.
    frame[5] = 0xEE;
    Message out;
    size_t consumed = 0;
    EXPECT_EQ(net::parse_frame(frame.data(), frame.size(), &out, &consumed),
              WireStatus::BadVersion);
}

TEST(Wire, RejectsBadType)
{
    for (uint16_t bad : {uint16_t{0},
                         static_cast<uint16_t>(net::kMaxMsgType + 1),
                         uint16_t{0xFFFF}}) {
        std::vector<uint8_t> frame =
            net::frame_message(full_message(MsgType::Join));
        frame[6] = static_cast<uint8_t>(bad);  // Type word at bytes 6-7.
        frame[7] = static_cast<uint8_t>(bad >> 8);
        Message out;
        size_t consumed = 0;
        EXPECT_EQ(net::parse_frame(frame.data(), frame.size(), &out,
                                   &consumed),
                  WireStatus::BadType)
            << "type " << bad;
    }
}

TEST(Wire, RejectsOversizedPayloadBeforeAllocating)
{
    std::vector<uint8_t> frame =
        net::frame_message(full_message(MsgType::Push));
    const uint32_t huge = net::kMaxPayloadBytes + 1;
    std::memcpy(frame.data() + 8, &huge, 4);  // payload_len at bytes 8-11.
    Message out;
    size_t consumed = 0;
    // Only the header is needed for the verdict: a hostile length field
    // is rejected before any allocation, even with no payload in hand.
    EXPECT_EQ(net::parse_frame(frame.data(), net::kWireHeaderBytes, &out,
                               &consumed),
              WireStatus::Oversized);
}

TEST(Wire, RejectsPayloadSmallerThanMetadata)
{
    std::vector<uint8_t> frame =
        net::frame_message(full_message(MsgType::Join));
    const uint32_t tiny = 4;  // Below the fixed metadata block.
    std::memcpy(frame.data() + 8, &tiny, 4);
    Message out;
    size_t consumed = 0;
    EXPECT_EQ(net::parse_frame(frame.data(), frame.size(), &out, &consumed),
              WireStatus::BadPayload);
}

TEST(Wire, RejectsSectionCountsThatDoNotTileThePayload)
{
    std::vector<uint8_t> frame =
        net::frame_message(full_message(MsgType::Push));
    // Inflate the int-section count (first count word of the payload
    // metadata) without supplying the bytes it claims.
    const size_t counts_at = net::kWireHeaderBytes + 4 + 8 + 8 + 8;
    uint32_t n_ints = 0;
    std::memcpy(&n_ints, frame.data() + counts_at, 4);
    ++n_ints;
    std::memcpy(frame.data() + counts_at, &n_ints, 4);
    Message out;
    size_t consumed = 0;
    EXPECT_EQ(net::parse_frame(frame.data(), frame.size(), &out, &consumed),
              WireStatus::BadPayload);
}

// ----------------------------------------------------- push-delta fuzz --

/** A well-formed Int8 PushDelta over a 64-element model. */
Message
valid_push_delta(size_t dim = 64)
{
    CompressionConfig cfg;
    cfg.mode = Compression::Int8;
    cfg.quant_range = 16;
    std::vector<float> delta(dim);
    for (size_t i = 0; i < dim; ++i)
        delta[i] = 0.01f * static_cast<float>(i) - 0.3f;
    Message m = net::make_push_delta(/*device=*/3, /*steps=*/5,
                                     /*samples=*/20, 0.5, 0.75,
                                     encode_delta(cfg, std::move(delta)));
    m.from = 1;
    m.round = 2;
    m.seq = 4;
    return m;
}

TEST(Wire, PushDeltaRoundTripsAndDecodes)
{
    const Message in = valid_push_delta();
    const std::vector<uint8_t> frame = net::frame_message(in);
    Message out;
    size_t consumed = 0;
    ASSERT_EQ(net::parse_frame(frame.data(), frame.size(), &out, &consumed),
              WireStatus::Ok);
    std::vector<float> delta;
    ASSERT_EQ(net::decode_push_delta(out, 64, &delta), WireStatus::Ok);
    EXPECT_EQ(delta.size(), 64u);
    EXPECT_EQ(out.ints[0], 3);  // Provenance survives framing.
    EXPECT_EQ(out.doubles[1], 0.75);
}

TEST(Wire, PushDeltaRejectsTruncatedScaleTable)
{
    Message m = valid_push_delta();
    m.floats.pop_back();  // One absmax short of div_up(64, 16) == 4.
    EXPECT_EQ(net::validate_push_delta(m, 64), WireStatus::BadCodec);
}

TEST(Wire, PushDeltaRejectsNaNScales)
{
    Message m = valid_push_delta();
    m.floats[1] = std::nanf("");
    EXPECT_EQ(net::validate_push_delta(m, 64), WireStatus::BadCodec);
}

TEST(Wire, PushDeltaRejectsKBeyondRangeLength)
{
    CompressionConfig cfg;
    cfg.mode = Compression::TopK;
    cfg.topk_fraction = 0.25;
    std::vector<float> delta(64, 0.5f);
    Message m = net::make_push_delta(0, 1, 1, 0.0, 0.0,
                                     encode_delta(cfg, std::move(delta)));
    m.ints[5] = 65;  // Claims more kept elements than the model has.
    EXPECT_EQ(net::validate_push_delta(m, 64), WireStatus::BadCodec);
    m.ints[5] = -1;  // Negative counts are malformed, not huge.
    EXPECT_EQ(net::validate_push_delta(m, 64), WireStatus::BadCodec);
}

TEST(Wire, PushDeltaRejectsDimensionMismatchAndBadSections)
{
    Message m = valid_push_delta();
    EXPECT_EQ(net::validate_push_delta(m, 63), WireStatus::BadCodec);

    Message wrong_type = valid_push_delta();
    wrong_type.type = MsgType::Push;
    EXPECT_EQ(net::validate_push_delta(wrong_type, 64),
              WireStatus::BadType);

    Message bad_codec = valid_push_delta();
    bad_codec.ints[3] = 0;  // Compression::None never ships as PushDelta.
    EXPECT_EQ(net::validate_push_delta(bad_codec, 64),
              WireStatus::BadCodec);
    bad_codec.ints[3] = 99;  // Unknown codec id.
    EXPECT_EQ(net::validate_push_delta(bad_codec, 64),
              WireStatus::BadCodec);

    Message short_ints = valid_push_delta();
    short_ints.ints.pop_back();
    EXPECT_EQ(net::validate_push_delta(short_ints, 64),
              WireStatus::BadCodec);
}

TEST(Wire, PushDeltaFuzzedFramesNeverCrash)
{
    // Deterministic corruption sweep: every single-byte flip of a valid
    // PushDelta frame must land in a typed status — parse-level or
    // codec-level — never a crash, hang or over-read.
    const Message in = valid_push_delta();
    const std::vector<uint8_t> base = net::frame_message(in);
    int parsed_ok = 0, rejected = 0;
    for (size_t pos = 0; pos < base.size(); ++pos) {
        for (uint8_t flip : {0x01, 0x80, 0xFF}) {
            std::vector<uint8_t> frame = base;
            frame[pos] ^= flip;
            Message out;
            size_t consumed = 0;
            if (net::parse_frame(frame.data(), frame.size(), &out,
                                 &consumed) != WireStatus::Ok) {
                ++rejected;
                continue;
            }
            // Structurally valid frames still face codec validation.
            if (net::validate_push_delta(out, 64) == WireStatus::Ok)
                ++parsed_ok;
            else
                ++rejected;
        }
    }
    // The sweep must have exercised both outcomes: corruption in the
    // header/counts dies at parse, corruption in codec fields dies (or
    // survives, for value-only bits) at validation.
    EXPECT_GT(rejected, 0);
    EXPECT_GT(parsed_ok, 0);
}

// ------------------------------------------------------------- loopback --

TEST(LoopbackVan, DeliversFifoWithBitExactPayloads)
{
    auto [a, b] = make_loopback_pair();
    for (int i = 0; i < 8; ++i) {
        Message m;
        m.type = MsgType::Push;
        m.seq = static_cast<uint64_t>(i);
        m.floats = {static_cast<float>(i) * 1.25f};
        ASSERT_TRUE(a->send(std::move(m)));
    }
    for (int i = 0; i < 8; ++i) {
        Message m;
        ASSERT_EQ(b->recv(&m, 1000), RecvStatus::Ok);
        EXPECT_EQ(m.seq, static_cast<uint64_t>(i)) << "FIFO violated";
        ASSERT_EQ(m.floats.size(), 1u);
        EXPECT_EQ(m.floats[0], static_cast<float>(i) * 1.25f);
    }
    EXPECT_GT(a->bytes_sent(), 0u);
    EXPECT_EQ(a->bytes_sent(), b->bytes_received());
}

TEST(LoopbackVan, RecvTimesOutThenStillWorks)
{
    auto [a, b] = make_loopback_pair();
    Message m;
    EXPECT_EQ(b->recv(&m, 10), RecvStatus::Timeout);
    Message ping;
    ping.type = MsgType::Heartbeat;
    ASSERT_TRUE(a->send(std::move(ping)));
    EXPECT_EQ(b->recv(&m, 1000), RecvStatus::Ok);
}

TEST(LoopbackVan, CloseUnblocksPeerWithClosed)
{
    auto [a, b] = make_loopback_pair();
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        a->close();
    });
    Message m;
    EXPECT_EQ(b->recv(&m, -1), RecvStatus::Closed);
    closer.join();
    Message late;
    late.type = MsgType::Heartbeat;
    EXPECT_FALSE(b->send(std::move(late)));
}

// -------------------------------------------------------------- sockets --

std::string
test_unix_path(const char *tag)
{
    return "/tmp/autofl_test_net_" + std::string(tag) + "_" +
        std::to_string(::getpid()) + ".sock";
}

TEST(SocketVan, UnixSocketRoundTripsWeightSizedMessages)
{
    const std::string path = test_unix_path("rt");
    const NetAddress addr = NetAddress::parse("unix:" + path);
    ASSERT_TRUE(addr.socket_scheme());
    std::string err;
    auto listener = Listener::listen(addr, &err);
    ASSERT_NE(listener, nullptr) << err;

    std::vector<float> weights(4096);
    for (size_t i = 0; i < weights.size(); ++i)
        weights[i] = static_cast<float>(i) * 0.001f - 2.0f;

    std::thread client([&] {
        std::string dial_err;
        auto van = net::dial(addr, 40, 25, &dial_err);
        ASSERT_NE(van, nullptr) << dial_err;
        Message m;
        m.type = MsgType::Push;
        m.seq = 9;
        m.floats = weights;
        ASSERT_TRUE(van->send(std::move(m)));
        Message echo;
        ASSERT_EQ(van->recv(&echo, 5000), RecvStatus::Ok);
        EXPECT_EQ(echo.type, MsgType::PullResp);
        EXPECT_EQ(echo.floats, weights);
    });

    auto server = listener->accept(5000);
    ASSERT_NE(server, nullptr);
    EXPECT_STREQ(server->kind(), "unix");
    Message m;
    ASSERT_EQ(server->recv(&m, 5000), RecvStatus::Ok);
    EXPECT_EQ(m.seq, 9u);
    ASSERT_EQ(m.floats.size(), weights.size());
    for (size_t i = 0; i < weights.size(); ++i) {
        uint32_t a = 0, b = 0;
        std::memcpy(&a, &weights[i], 4);
        std::memcpy(&b, &m.floats[i], 4);
        ASSERT_EQ(a, b) << "weights not bit-exact over the socket at " << i;
    }
    Message resp;
    resp.type = MsgType::PullResp;
    resp.floats = weights;
    ASSERT_TRUE(server->send(std::move(resp)));
    client.join();
    EXPECT_GT(server->bytes_received(),
              4 * weights.size());  // Frame overhead on top of payload.
    ::unlink(path.c_str());
}

TEST(SocketVan, TcpSocketRoundTrips)
{
    // A fixed high port can collide on a busy host; skip, don't flake.
    const int port = 34000 + static_cast<int>(::getpid() % 20000);
    const NetAddress addr =
        NetAddress::parse("tcp:127.0.0.1:" + std::to_string(port));
    std::string err;
    auto listener = Listener::listen(addr, &err);
    if (!listener)
        GTEST_SKIP() << "tcp port " << port << " unavailable: " << err;

    std::thread client([&] {
        std::string dial_err;
        auto van = net::dial(addr, 40, 25, &dial_err);
        ASSERT_NE(van, nullptr) << dial_err;
        Message m;
        m.type = MsgType::Heartbeat;
        m.from = 7;
        ASSERT_TRUE(van->send(std::move(m)));
        Message ack;
        ASSERT_EQ(van->recv(&ack, 5000), RecvStatus::Ok);
        EXPECT_EQ(ack.type, MsgType::HeartbeatAck);
    });
    auto server = listener->accept(5000);
    ASSERT_NE(server, nullptr);
    EXPECT_STREQ(server->kind(), "tcp");
    Message m;
    ASSERT_EQ(server->recv(&m, 5000), RecvStatus::Ok);
    EXPECT_EQ(m.from, 7);
    Message ack;
    ack.type = MsgType::HeartbeatAck;
    ASSERT_TRUE(server->send(std::move(ack)));
    client.join();
}

TEST(SocketVan, GarbageBytesSurfaceAsTypedErrorNotCrash)
{
    const std::string path = test_unix_path("garbage");
    const NetAddress addr = NetAddress::parse("unix:" + path);
    std::string err;
    auto listener = Listener::listen(addr, &err);
    ASSERT_NE(listener, nullptr) << err;

    // A hostile peer: raw socket, 64 bytes that are not a frame.
    std::thread attacker([&] {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                            sizeof(sa)),
                  0);
        std::vector<uint8_t> junk(64, 0xFF);
        ASSERT_EQ(::send(fd, junk.data(), junk.size(), 0),
                  static_cast<ssize_t>(junk.size()));
        ::close(fd);
    });

    auto server = listener->accept(5000);
    ASSERT_NE(server, nullptr);
    Message m;
    EXPECT_EQ(server->recv(&m, 5000), RecvStatus::Error);
    EXPECT_NE(server->last_error().find("BadMagic"), std::string::npos)
        << server->last_error();
    attacker.join();
    ::unlink(path.c_str());
}

// ----------------------------------------------- postoffice & monitor --

TEST(Postoffice, ShardRangeMatchesShardedStoreLayout)
{
    for (size_t dim : {1u, 7u, 64u, 1000u}) {
        for (int shards : {1, 3, 8, 13}) {
            ShardedStore store(std::vector<float>(dim, 0.0f), shards);
            for (int s = 0; s < store.num_shards(); ++s) {
                const auto [begin, end] = Postoffice::shard_range(
                    s, store.dim(), store.num_shards());
                EXPECT_EQ(begin, store.shard_begin(s))
                    << "dim " << dim << " shards " << shards << " s " << s;
                EXPECT_EQ(end, store.shard_end(s));
            }
        }
    }
}

TEST(Postoffice, MarkDeadFiresExactlyOnce)
{
    Postoffice po;
    const int id = po.add_worker("w");
    EXPECT_TRUE(po.is_alive(id));
    EXPECT_TRUE(po.mark_dead(id));   // The Alive -> Dead transition...
    EXPECT_FALSE(po.mark_dead(id));  // ...is the dedup point.
    EXPECT_FALSE(po.is_alive(id));
    EXPECT_EQ(po.alive_count(), 0);
    EXPECT_EQ(po.total_joined(), 1);
}

TEST(Postoffice, BarrierQuorumShrinksWithDeaths)
{
    Postoffice po;
    const int w1 = po.add_worker("a");
    const int w2 = po.add_worker("b");
    const uint64_t id = po.open_barrier();
    EXPECT_FALSE(po.barrier_done());
    po.barrier_ack(w1, id);
    EXPECT_FALSE(po.barrier_done());  // w2 still owes an ack.
    po.mark_dead(w2);                 // A death must not wedge the barrier.
    EXPECT_TRUE(po.barrier_done());
}

TEST(Monitor, SilentWorkerIsDeclaredDeadOnce)
{
    Postoffice po;
    const int chatty = po.add_worker("chatty");
    const int silent = po.add_worker("silent");
    std::atomic<int> deaths{0};
    std::atomic<int> dead_node{-1};
    Monitor mon(po, 120, [&](int node, int) {
        ++deaths;
        dead_node = node;
    });
    mon.start();
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::seconds(5);
    while (deaths.load() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        mon.note_alive(chatty);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // Grace period: keep the chatty worker beating and give a second
    // detection of the silent one every chance to (wrongly) fire.
    for (int i = 0; i < 15; ++i) {
        mon.note_alive(chatty);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    mon.stop();
    EXPECT_EQ(deaths.load(), 1);
    EXPECT_EQ(dead_node.load(), silent);
    EXPECT_TRUE(po.is_alive(chatty));
    EXPECT_FALSE(po.is_alive(silent));
}

// ------------------------------------------------------- config knobs --

/** Expect validate() to throw naming @p knob (PR-4 message style). */
void
expect_net_rejected(const NetConfig &net, const std::string &knob)
{
    try {
        net.validate("T.net");
        FAIL() << "expected std::invalid_argument naming " << knob;
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(knob), std::string::npos)
            << "message does not name the knob: " << e.what();
    }
}

TEST(NetConfigValidation, DisabledConfigIsAlwaysValid)
{
    NetConfig net;
    net.workers = -5;  // Nonsense everywhere, but the transport is off.
    net.heartbeat_interval_ms = 0;
    EXPECT_NO_THROW(net.validate("T.net"));
}

TEST(NetConfigValidation, RejectsUnparsableListenAddress)
{
    NetConfig net;
    net.listen = "carrier-pigeon:roof";
    expect_net_rejected(net, "listen");
}

TEST(NetConfigValidation, RejectsBadWorkerCount)
{
    NetConfig net;
    net.listen = "loopback";
    net.workers = 0;
    expect_net_rejected(net, "workers");
}

TEST(NetConfigValidation, RejectsSpawnCommandWithoutASocket)
{
    NetConfig net;
    net.listen = "loopback";
    net.spawn_cmd = "./worker";
    expect_net_rejected(net, "spawn_cmd");
}

TEST(NetConfigValidation, RejectsHeartbeatMisconfiguration)
{
    NetConfig net;
    net.listen = "loopback";
    net.heartbeat_interval_ms = 0;
    expect_net_rejected(net, "heartbeat_interval_ms");

    net = NetConfig{};
    net.listen = "loopback";
    net.heartbeat_interval_ms = 100;
    net.heartbeat_timeout_ms = 150;  // Below 2x: one late beat == death.
    expect_net_rejected(net, "heartbeat_timeout_ms");
}

TEST(NetConfigValidation, RejectsBadRetryAndTimeoutKnobs)
{
    NetConfig net;
    net.listen = "unix:/tmp/x.sock";
    net.connect_retry = 0;
    expect_net_rejected(net, "connect_retry");

    net = NetConfig{};
    net.listen = "unix:/tmp/x.sock";
    net.connect_retry_delay_ms = 0;
    expect_net_rejected(net, "connect_retry_delay_ms");

    net = NetConfig{};
    net.listen = "unix:/tmp/x.sock";
    net.join_timeout_ms = 0;
    expect_net_rejected(net, "join_timeout_ms");

    net = NetConfig{};
    net.listen = "unix:/tmp/x.sock";
    net.round_timeout_ms = 100;  // Below the heartbeat timeout.
    expect_net_rejected(net, "round_timeout_ms");
}

TEST(NetConfigValidation, MessagesCarryTheRejectedValue)
{
    NetConfig net;
    net.listen = "loopback";
    net.workers = -3;
    try {
        net.validate("T.net");
        FAIL();
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("got -3"), std::string::npos) << msg;
        EXPECT_NE(msg.find(">= 1"), std::string::npos) << msg;
    }
}

TEST(NetConfigValidation, PsConfigRejectsNetUnderSyncMode)
{
    PsConfig cfg;
    cfg.mode = SyncMode::Sync;
    cfg.net.listen = "loopback";
    try {
        cfg.validate("T");
        FAIL() << "expected rejection: net transport under Sync mode";
    } catch (const std::invalid_argument &e) {
        // The message must point at the fix, not just the problem.
        EXPECT_NE(std::string(e.what()).find("SemiAsync"),
                  std::string::npos)
            << e.what();
    }
}

TEST(NetConfigValidation, PsConfigRejectsNetWithPipelining)
{
    PsConfig cfg;
    cfg.mode = SyncMode::SemiAsync;
    cfg.pipeline_depth = 2;
    cfg.net.listen = "loopback";
    try {
        cfg.validate("T");
        FAIL() << "expected rejection: net transport with pipeline_depth 2";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("pipeline_depth"),
                  std::string::npos)
            << e.what();
    }
}

TEST(NetConfigValidation, ExperimentConfigPlumbsNetKnobs)
{
    ExperimentConfig cfg;
    cfg.net.listen = "loopback";
    cfg.sync_mode = SyncMode::Sync;
    try {
        cfg.validate();
        FAIL() << "expected rejection: ExperimentConfig.net under Sync";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("ExperimentConfig"),
                  std::string::npos)
            << e.what();
    }
    cfg.sync_mode = SyncMode::SemiAsync;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(NetConfigValidation, FlSystemRejectsFedlOverTheCluster)
{
    FlSystemConfig cfg;
    cfg.algorithm = Algorithm::Fedl;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.net.listen = "loopback";
    try {
        cfg.validate();
        FAIL() << "expected rejection: FEDL over the cluster";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("FEDL"), std::string::npos)
            << e.what();
    }
}

// ------------------------------------------------------ cluster server --

PsConfig
tiny_cluster_cfg()
{
    PsConfig cfg;
    cfg.mode = SyncMode::SemiAsync;
    // S=0: one commit at the round barrier, so every pull of the round
    // returns the round-start weights and the arithmetic below is exact.
    cfg.staleness_bound = 0;
    cfg.shards = 3;
    cfg.net.listen = "loopback";
    cfg.net.workers = 2;
    cfg.net.heartbeat_interval_ms = 25;
    cfg.net.heartbeat_timeout_ms = 500;
    cfg.net.round_timeout_ms = 30000;
    return cfg;
}

/** A worker thread whose "training" adds 1 to every pulled weight. */
std::thread
plus_one_worker(ClusterServer &server, const PsConfig &cfg,
                std::unique_ptr<ClusterWorker> *out)
{
    auto [server_end, worker_end] = make_loopback_pair();
    server.add_worker(std::move(server_end));
    *out = std::make_unique<ClusterWorker>(std::move(worker_end), cfg.net);
    ClusterWorker *w = out->get();
    return std::thread([w] {
        std::string err;
        ASSERT_TRUE(w->join(&err)) << err;
        w->run([](const WorkerJob &job) {
            LocalUpdate u;
            u.device_id = job.device_id;
            u.num_steps = 1;
            u.num_samples = 1;
            u.weights = job.weights;
            for (float &x : u.weights)
                x += 1.0f;
            return u;
        });
    });
}

TEST(ClusterServer, RoundAggregatesPushesFromLoopbackWorkers)
{
    const PsConfig cfg = tiny_cluster_cfg();
    const std::vector<float> init = {0.0f, 1.0f, 2.0f, 3.0f, 4.0f,
                                     5.0f, 6.0f, 7.0f};
    ClusterServer server(init, Algorithm::FedAvg, cfg);
    std::unique_ptr<ClusterWorker> w1, w2;
    std::thread t1 = plus_one_worker(server, cfg, &w1);
    std::thread t2 = plus_one_worker(server, cfg, &w2);

    std::vector<ClusterJob> jobs;
    for (int d = 0; d < 6; ++d)
        jobs.push_back(ClusterJob{d});
    const PsRoundStats stats = server.run_round(jobs, 0);
    EXPECT_EQ(stats.pushed, 6);
    EXPECT_EQ(stats.applied, 6);
    EXPECT_EQ(stats.evicted, 0);
    // Six identical (init + 1) updates average to exactly init + 1.
    const std::vector<float> after = server.store().read();
    ASSERT_EQ(after.size(), init.size());
    for (size_t i = 0; i < init.size(); ++i)
        EXPECT_EQ(after[i], init[i] + 1.0f) << "index " << i;

    EXPECT_TRUE(server.barrier(5000));
    server.shutdown();
    t1.join();
    t2.join();
    EXPECT_EQ(server.dead_evictions(), 0u);
}

TEST(ClusterServer, RangedPullReturnsExactShardSlice)
{
    const PsConfig cfg = tiny_cluster_cfg();
    std::vector<float> init(10);
    for (size_t i = 0; i < init.size(); ++i)
        init[i] = static_cast<float>(i);
    ClusterServer server(init, Algorithm::FedAvg, cfg);

    auto [server_end, worker_end] = make_loopback_pair();
    server.add_worker(std::move(server_end));
    Message join;
    join.type = MsgType::Join;
    ASSERT_TRUE(worker_end->send(std::move(join)));
    Message ack;
    ASSERT_EQ(worker_end->recv(&ack, 5000), RecvStatus::Ok);
    ASSERT_EQ(ack.type, MsgType::JoinAck);

    Message req;
    req.type = MsgType::PullReq;
    req.seq = 3;
    req.ints = {1, 3};  // Shards [1, 3) of 3.
    ASSERT_TRUE(worker_end->send(std::move(req)));
    Message resp;
    ASSERT_EQ(worker_end->recv(&resp, 5000), RecvStatus::Ok);
    ASSERT_EQ(resp.type, MsgType::PullResp);
    const auto [begin, _] =
        Postoffice::shard_range(1, init.size(), server.store().num_shards());
    const auto [__, end] =
        Postoffice::shard_range(2, init.size(), server.store().num_shards());
    ASSERT_EQ(resp.ints.size(), 2u);
    EXPECT_EQ(resp.ints[0], static_cast<int32_t>(begin));
    EXPECT_EQ(resp.ints[1], static_cast<int32_t>(end));
    ASSERT_EQ(resp.floats.size(), end - begin);
    for (size_t i = begin; i < end; ++i)
        EXPECT_EQ(resp.floats[i - begin], init[i]);
    worker_end->close();
    server.shutdown();
}

// ------------------------------------------------- FL over the cluster --

FlSystemConfig
cluster_system(const std::string &listen, int workers)
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, 6};
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 240;
    cfg.data.test_samples = 80;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = 12;
    cfg.seed = 23;
    cfg.threads = 4;
    cfg.ps.shards = 5;
    if (!listen.empty()) {
        cfg.ps.mode = SyncMode::SemiAsync;
        cfg.ps.staleness_bound = 0;
        cfg.ps.net.listen = listen;
        cfg.ps.net.workers = workers;
    }
    return cfg;
}

const std::vector<int> kRoundIds = {0, 3, 5, 7, 9, 11};

TEST(FlCluster, LoopbackSemiAsyncZeroBoundMatchesSyncBitForBit)
{
    // The PR's parity guarantee, extended over a transport: the same
    // job routed through Van messages and remote workers must produce
    // the very same bits as the in-process synchronous barrier. Pushes
    // carry driver-assigned seqs (the aggregator's sort key), clients
    // derive their RNG from (seed, device, round), and loopback moves
    // float vectors without serialization — so placement and timing
    // cannot leak into the weights.
    FlSystem sync(cluster_system("", 0));
    FlSystem clustered(cluster_system("loopback", 3));

    for (uint64_t round = 0; round < 3; ++round) {
        sync.run_round(kRoundIds, round);
        clustered.run_round(kRoundIds, round);
        const auto &a = sync.server().global_weights();
        const auto &b = clustered.server().global_weights();
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]) << "round " << round << " index " << i;
    }
    ASSERT_NE(clustered.cluster(), nullptr);
    EXPECT_EQ(clustered.cluster()->server().dead_evictions(), 0u);
}

TEST(FlCluster, DeadWorkerBecomesEvictionNotHang)
{
    // Kill-a-client semantics: worker 0 wedges (heartbeats stop,
    // transport stays open — the hard failure mode) after one job. The
    // Monitor must declare it dead, its in-flight jobs must surface as
    // staleness evictions, and the round — and the next round, re-routed
    // around the corpse — must complete. The test's own deadline is the
    // ctest timeout; no sleeps tuned to luck.
    FlSystemConfig cfg = cluster_system("loopback", 2);
    cfg.ps.net.heartbeat_interval_ms = 25;
    cfg.ps.net.heartbeat_timeout_ms = 250;
    cfg.ps.net.round_timeout_ms = 60000;  // Backstop only; must not fire.
    FlSystem fl(cfg);
    ASSERT_NE(fl.cluster(), nullptr);
    std::string err;
    ASSERT_TRUE(fl.cluster()->start(&err)) << err;
    ASSERT_NE(fl.cluster()->loopback_worker(0), nullptr);
    fl.cluster()->loopback_worker(0)->halt_after_jobs(1);

    const PsRoundStats r0 = fl.run_round(kRoundIds, 0);
    // Worker 0 owned 3 of the 6 round-robin jobs and completed one.
    EXPECT_EQ(r0.applied, 4);
    EXPECT_EQ(r0.evicted, 2);
    EXPECT_EQ(fl.cluster()->server().dead_evictions(), 2u);
    EXPECT_EQ(fl.cluster()->server().postoffice().alive_count(), 1);

    // The next round routes every job to the survivor and loses none.
    const PsRoundStats r1 = fl.run_round(kRoundIds, 1);
    EXPECT_EQ(r1.applied, 6);
    EXPECT_EQ(r1.evicted, 0);

    // The model is still a model: training continued without worker 0.
    EXPECT_GT(fl.evaluate(), 0.0);
}

} // namespace
} // namespace autofl
