/** @file Tensor container and matmul kernel tests. */
#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace autofl {
namespace {

TEST(Tensor, DefaultIsEmpty)
{
    Tensor t;
    EXPECT_EQ(t.rank(), 0);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.empty());
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.size(), 6u);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor)
{
    Tensor t({4}, 2.5f);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, DataConstructorChecksSize)
{
    Tensor t({2, 2}, std::vector<float>{1, 2, 3, 4});
    EXPECT_EQ(t.at2(0, 0), 1.0f);
    EXPECT_EQ(t.at2(0, 1), 2.0f);
    EXPECT_EQ(t.at2(1, 0), 3.0f);
    EXPECT_EQ(t.at2(1, 1), 4.0f);
}

TEST(Tensor, DimSupportsNegativeIndex)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.dim(0), 2);
    EXPECT_EQ(t.dim(-1), 4);
    EXPECT_EQ(t.dim(-2), 3);
}

TEST(Tensor, At3At4RowMajorLayout)
{
    Tensor t3({2, 3, 4});
    t3.at3(1, 2, 3) = 9.0f;
    EXPECT_EQ(t3[1 * 12 + 2 * 4 + 3], 9.0f);

    Tensor t4({2, 3, 4, 5});
    t4.at4(1, 2, 3, 4) = 7.0f;
    EXPECT_EQ(t4[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
    Tensor r = t.reshaped({3, 2});
    EXPECT_EQ(r.dim(0), 3);
    EXPECT_EQ(r.at2(2, 1), 6.0f);
}

TEST(Tensor, ElementwiseOps)
{
    Tensor a({3}, std::vector<float>{1, 2, 3});
    Tensor b({3}, std::vector<float>{10, 20, 30});
    Tensor c = a + b;
    EXPECT_EQ(c[1], 22.0f);
    c -= a;
    EXPECT_EQ(c[2], 30.0f);
    c *= 0.5f;
    EXPECT_EQ(c[0], 5.0f);
    Tensor d = a - b;
    EXPECT_EQ(d[0], -9.0f);
    Tensor e = a * 3.0f;
    EXPECT_EQ(e[2], 9.0f);
}

TEST(Tensor, SumAndNorm)
{
    Tensor t({2, 2}, std::vector<float>{1, -2, 3, -4});
    EXPECT_DOUBLE_EQ(t.sum(), -2.0);
    EXPECT_DOUBLE_EQ(t.squared_norm(), 1 + 4 + 9 + 16);
}

TEST(Tensor, ShapeStr)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.shape_str(), "[2, 3, 4]");
}

TEST(Matmul, SmallKnownProduct)
{
    Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
    Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
    Tensor c = matmul(a, b);
    EXPECT_EQ(c.dim(0), 2);
    EXPECT_EQ(c.dim(1), 2);
    EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at2(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at2(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Matmul, IdentityIsNoOp)
{
    Tensor eye({3, 3});
    for (int i = 0; i < 3; ++i)
        eye.at2(i, i) = 1.0f;
    Tensor a({3, 3}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
    Tensor c = matmul(a, eye);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_FLOAT_EQ(c[i], a[i]);
}

/** Transposed variants agree with explicitly transposing the operand. */
class MatmulVariantTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MatmulVariantTest, TnNtAgreeWithExplicitTranspose)
{
    const auto [m, k, n] = GetParam();
    Rng rng(5);
    Tensor a({m, k});
    Tensor b({k, n});
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<float>(rng.uniform(-1, 1));
    for (size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<float>(rng.uniform(-1, 1));

    Tensor at({k, m});
    for (int i = 0; i < m; ++i)
        for (int j = 0; j < k; ++j)
            at.at2(j, i) = a.at2(i, j);
    Tensor bt({n, k});
    for (int i = 0; i < k; ++i)
        for (int j = 0; j < n; ++j)
            bt.at2(j, i) = b.at2(i, j);

    Tensor ref = matmul(a, b);
    Tensor via_tn = matmul_tn(at, b);
    Tensor via_nt = matmul_nt(a, bt);
    ASSERT_EQ(via_tn.shape(), ref.shape());
    ASSERT_EQ(via_nt.shape(), ref.shape());
    for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_NEAR(via_tn[i], ref[i], 1e-4f);
        EXPECT_NEAR(via_nt[i], ref[i], 1e-4f);
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulVariantTest,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{2, 3, 4},
                                           std::tuple{5, 7, 3},
                                           std::tuple{8, 2, 8},
                                           std::tuple{3, 16, 5}));

TEST(Tensor, SameShape)
{
    Tensor a({2, 3}), b({2, 3}), c({3, 2});
    EXPECT_TRUE(same_shape(a, b));
    EXPECT_FALSE(same_shape(a, c));
}

} // namespace
} // namespace autofl
