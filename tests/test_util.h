/**
 * @file
 * Shared helpers for the gtest suite: numerical gradient checking of
 * layers and models against the analytic backward passes, plus the
 * serving-suite fixtures (random workload weights, small test sets,
 * scoped kernel-arch overrides).
 */
#ifndef AUTOFL_TESTS_TEST_UTIL_H
#define AUTOFL_TESTS_TEST_UTIL_H

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "kernels/arch.h"
#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/models.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace autofl::testing {

/** Fill a tensor with small random values. */
inline void
randomize(Tensor &t, Rng &rng, double scale = 0.5)
{
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.uniform(-scale, scale));
}

/** Random-initialized flat weights for a workload. */
inline std::vector<float>
random_weights(Workload w, uint64_t seed)
{
    Sequential model = make_model(w);
    Rng rng(seed);
    model.init_weights(rng);
    return model.flat_weights();
}

/** Small held-out set for a workload. */
inline Dataset
small_test_set(Workload w, int samples)
{
    SyntheticConfig cfg;
    cfg.train_samples = 16;  // Unused but must be generated.
    cfg.test_samples = samples;
    cfg.seed = 99;
    return make_dataset(w, cfg).test;
}

/** RAII kernel-arch override. */
class ScopedKernelArch
{
  public:
    explicit ScopedKernelArch(kernels::KernelArch arch)
        : prev_(kernels::current_kernel_arch())
    {
        kernels::set_kernel_arch(arch);
    }
    ~ScopedKernelArch() { kernels::set_kernel_arch(prev_); }

  private:
    kernels::KernelArch prev_;
};

/**
 * Scalar objective used by the gradient checks: a fixed random linear
 * functional of the layer output (differentiable, exercises all outputs).
 */
struct LinearObjective
{
    Tensor weights;

    explicit
    LinearObjective(const std::vector<int> &out_shape, Rng &rng)
        : weights(out_shape)
    {
        randomize(weights, rng, 1.0);
    }

    double
    value(const Tensor &out) const
    {
        double s = 0.0;
        for (size_t i = 0; i < out.size(); ++i)
            s += static_cast<double>(out[i]) * weights[i];
        return s;
    }

    Tensor
    grad() const
    {
        return weights;
    }
};

/**
 * Check the layer's input gradient and parameter gradients against
 * central finite differences of the linear objective.
 *
 * @param layer Layer under test (weights already initialized).
 * @param in_shape Input shape including batch/time dims.
 * @param tol Relative-ish tolerance for the comparison.
 */
inline void
check_layer_gradients(Layer &layer, const std::vector<int> &in_shape,
                      double tol = 2e-2, uint64_t seed = 1234)
{
    Rng rng(seed);
    Tensor x(in_shape);
    randomize(x, rng);

    Tensor out = layer.forward(x);
    LinearObjective obj(out.shape(), rng);

    layer.zero_grad();
    layer.forward(x);
    Tensor dx = layer.backward(obj.grad());
    ASSERT_EQ(dx.shape(), x.shape());

    const float eps = 1e-3f;
    auto fd_check = [&](float &slot, double analytic, const char *what,
                        size_t idx) {
        const float saved = slot;
        slot = saved + eps;
        const double up = obj.value(layer.forward(x));
        slot = saved - eps;
        const double down = obj.value(layer.forward(x));
        slot = saved;
        const double numeric = (up - down) / (2.0 * eps);
        const double denom =
            std::max({1.0, std::abs(numeric), std::abs(analytic)});
        EXPECT_NEAR(analytic / denom, numeric / denom, tol)
            << what << " index " << idx;
    };

    // Input gradient: spot-check a spread of elements.
    const size_t stride = std::max<size_t>(1, x.size() / 17);
    for (size_t i = 0; i < x.size(); i += stride)
        fd_check(x[i], dx[i], "input", i);

    // Parameter gradients.
    auto params = layer.params();
    auto grads = layer.grads();
    ASSERT_EQ(params.size(), grads.size());
    for (size_t p = 0; p < params.size(); ++p) {
        Tensor &w = *params[p];
        const Tensor &g = *grads[p];
        const size_t pstride = std::max<size_t>(1, w.size() / 13);
        for (size_t i = 0; i < w.size(); i += pstride)
            fd_check(w[i], g[i], "param", p * 100000 + i);
    }
}

} // namespace autofl::testing

#endif // AUTOFL_TESTS_TEST_UTIL_H
