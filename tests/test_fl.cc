/** @file FL engine tests: local training, aggregation algorithms, system. */
#include <cmath>

#include <gtest/gtest.h>

#include "fl/system.h"

namespace autofl {
namespace {

FlSystemConfig
small_system(Algorithm alg = Algorithm::FedAvg)
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 2, 5};
    cfg.algorithm = alg;
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 400;
    cfg.data.test_samples = 200;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = 20;
    cfg.seed = 11;
    cfg.threads = 4;
    return cfg;
}

TEST(LocalTrainer, ReducesLossOnShard)
{
    FlSystem fl(small_system());
    LocalTrainer trainer(Workload::CnnMnist);
    const Dataset &shard = fl.shard(0);

    FlGlobalParams params{8, 1, 5};
    TrainHyper hyper;
    hyper.lr = 0.05;
    auto first = trainer.train(fl.server().global_weights(), shard, params,
                               hyper, Algorithm::FedAvg, {}, Rng(1));
    // Train more epochs from the same start: loss after must be lower.
    params.epochs = 8;
    auto more = trainer.train(fl.server().global_weights(), shard, params,
                              hyper, Algorithm::FedAvg, {}, Rng(1));
    EXPECT_LT(more.train_loss, first.train_loss);
    EXPECT_GT(more.train_acc, 0.3);
}

TEST(LocalTrainer, CountsStepsAndSamples)
{
    FlSystem fl(small_system());
    LocalTrainer trainer(Workload::CnnMnist);
    const Dataset &shard = fl.shard(0);
    const int n = static_cast<int>(shard.size());

    FlGlobalParams params{8, 3, 5};
    auto update = trainer.train(fl.server().global_weights(), shard, params,
                                TrainHyper{}, Algorithm::FedAvg, {}, Rng(2));
    const int batches_per_epoch = (n + 7) / 8;
    EXPECT_EQ(update.num_steps, 3 * batches_per_epoch);
    EXPECT_EQ(update.num_samples, n);
    EXPECT_EQ(update.weights.size(), fl.server().num_params());
}

TEST(LocalTrainer, FedProxStaysCloserToGlobal)
{
    FlSystem fl(small_system());
    LocalTrainer trainer(Workload::CnnMnist);
    const Dataset &shard = fl.shard(0);
    FlGlobalParams params{8, 4, 5};
    const auto &global = fl.server().global_weights();

    TrainHyper hyper;
    hyper.lr = 0.05;
    hyper.prox_mu = 0.0;
    auto plain = trainer.train(global, shard, params, hyper,
                               Algorithm::FedAvg, {}, Rng(3));
    hyper.prox_mu = 1.0;
    auto prox = trainer.train(global, shard, params, hyper,
                              Algorithm::FedProx, {}, Rng(3));

    auto dist = [&](const std::vector<float> &w) {
        double s = 0.0;
        for (size_t i = 0; i < w.size(); ++i) {
            const double d = w[i] - global[i];
            s += d * d;
        }
        return std::sqrt(s);
    };
    EXPECT_LT(dist(prox.weights), dist(plain.weights));
}

TEST(LocalTrainer, FullGradientMatchesShape)
{
    FlSystem fl(small_system());
    LocalTrainer trainer(Workload::CnnMnist);
    auto g = trainer.full_gradient(fl.server().global_weights(), fl.shard(0));
    EXPECT_EQ(g.size(), fl.server().num_params());
    double norm = 0.0;
    for (float v : g)
        norm += static_cast<double>(v) * v;
    EXPECT_GT(norm, 0.0);
}

TEST(Server, FedAvgIsSampleWeightedMean)
{
    Server server(Workload::CnnMnist, Algorithm::FedAvg, TrainHyper{}, 5);
    const size_t dim = server.num_params();

    LocalUpdate a, b;
    a.weights.assign(dim, 1.0f);
    a.num_samples = 10;
    a.num_steps = 1;
    b.weights.assign(dim, 4.0f);
    b.num_samples = 30;
    b.num_steps = 1;
    server.aggregate({a, b});
    // (10*1 + 30*4) / 40 = 3.25.
    for (size_t i = 0; i < dim; i += dim / 7)
        EXPECT_NEAR(server.global_weights()[i], 3.25f, 1e-5f);
}

TEST(Server, AggregateEmptyIsNoOp)
{
    Server server(Workload::CnnMnist, Algorithm::FedAvg, TrainHyper{}, 6);
    auto before = server.global_weights();
    server.aggregate({});
    EXPECT_EQ(server.global_weights(), before);
}

TEST(Server, FedNovaNormalizesByLocalSteps)
{
    Server server(Workload::CnnMnist, Algorithm::FedNova, TrainHyper{}, 7);
    const size_t dim = server.num_params();
    std::vector<float> w0 = server.global_weights();

    // Client A took 10 steps, client B only 2, but both moved the same
    // distance per step. FedNova should treat their *directions* equally.
    LocalUpdate a, b;
    a.num_samples = 10;
    a.num_steps = 10;
    a.weights.resize(dim);
    b.num_samples = 10;
    b.num_steps = 2;
    b.weights.resize(dim);
    for (size_t i = 0; i < dim; ++i) {
        a.weights[i] = w0[i] - 10.0f * 0.01f;  // 10 steps of -0.01
        b.weights[i] = w0[i] - 2.0f * 0.01f;   // 2 steps of -0.01
    }
    server.aggregate({a, b});
    // Normalized direction: both 0.01/step; tau_eff = 0.5*10 + 0.5*2 = 6
    // -> step = 6 * 0.01 = 0.06.
    for (size_t i = 0; i < dim; i += dim / 7)
        EXPECT_NEAR(server.global_weights()[i], w0[i] - 0.06f, 1e-4f);
}

TEST(Server, FedlCorrectionUsesGlobalGradient)
{
    Server server(Workload::CnnMnist, Algorithm::Fedl, TrainHyper{}, 8);
    EXPECT_TRUE(server.wants_full_gradients());
    const size_t dim = server.num_params();

    // No estimate yet -> empty correction.
    std::vector<float> local_grad(dim, 0.5f);
    EXPECT_TRUE(server.fedl_correction(local_grad).empty());

    std::vector<std::vector<float>> grads = {
        std::vector<float>(dim, 1.0f), std::vector<float>(dim, 3.0f)};
    server.update_global_gradient(grads);
    auto corr = server.fedl_correction(local_grad);
    ASSERT_EQ(corr.size(), dim);
    // eta * mean(1,3) - 0.5 = 0.5 * 2 - 0.5 = 0.5.
    EXPECT_NEAR(corr[0], 0.5f, 1e-6f);
}

TEST(Server, EvaluateIsDeterministic)
{
    FlSystem fl(small_system());
    const double a = fl.evaluate();
    const double b = fl.evaluate();
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
}

TEST(FlSystem, ShardsCoverConfiguredDevices)
{
    FlSystem fl(small_system());
    EXPECT_EQ(fl.num_devices(), 20);
    for (int d = 0; d < fl.num_devices(); ++d) {
        EXPECT_FALSE(fl.shard(d).empty());
        EXPECT_GE(fl.classes_on_device(d), 1);
        EXPECT_LE(fl.classes_on_device(d), 10);
    }
}

TEST(FlSystem, RoundImprovesAccuracy)
{
    FlSystem fl(small_system());
    const double before = fl.evaluate();
    for (int round = 0; round < 5; ++round) {
        auto updates = fl.run_local_round({0, 1, 2, 3, 4},
                                          static_cast<uint64_t>(round));
        fl.aggregate(updates);
    }
    EXPECT_GT(fl.evaluate(), before + 0.1);
}

TEST(FlSystem, ParallelAndSerialTrainingAgree)
{
    FlSystemConfig cfg = small_system();
    cfg.threads = 1;
    FlSystem serial(cfg);
    cfg.threads = 8;
    FlSystem parallel(cfg);

    auto u1 = serial.run_local_round({0, 3, 7, 9}, 0);
    auto u2 = parallel.run_local_round({0, 3, 7, 9}, 0);
    ASSERT_EQ(u1.size(), u2.size());
    for (size_t i = 0; i < u1.size(); ++i) {
        EXPECT_EQ(u1[i].device_id, u2[i].device_id);
        ASSERT_EQ(u1[i].weights.size(), u2[i].weights.size());
        for (size_t j = 0; j < u1[i].weights.size(); j += 97)
            EXPECT_EQ(u1[i].weights[j], u2[i].weights[j]);
    }
}

class AlgorithmRoundTest : public ::testing::TestWithParam<Algorithm>
{
};

TEST_P(AlgorithmRoundTest, EveryAlgorithmTrainsEndToEnd)
{
    FlSystem fl(small_system(GetParam()));
    const double before = fl.evaluate();
    for (int round = 0; round < 6; ++round) {
        auto updates = fl.run_local_round({0, 2, 4, 6, 8},
                                          static_cast<uint64_t>(round));
        fl.aggregate(updates);
    }
    EXPECT_GT(fl.evaluate(), before)
        << algorithm_name(GetParam()) << " failed to learn";
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmRoundTest,
                         ::testing::Values(Algorithm::FedAvg,
                                           Algorithm::FedProx,
                                           Algorithm::FedNova,
                                           Algorithm::Fedl),
                         [](const auto &info) {
                             return algorithm_name(info.param);
                         });

TEST(FlTypes, Table5Settings)
{
    const FlGlobalParams s1 = global_params_for(ParamSetting::S1);
    EXPECT_EQ(s1.batch_size, 32);
    EXPECT_EQ(s1.epochs, 10);
    EXPECT_EQ(s1.k, 20);
    const FlGlobalParams s4 = global_params_for(ParamSetting::S4);
    EXPECT_EQ(s4.batch_size, 16);
    EXPECT_EQ(s4.epochs, 5);
    EXPECT_EQ(s4.k, 10);
    EXPECT_EQ(param_setting_name(ParamSetting::S2), "S2");
    EXPECT_EQ(all_param_settings().size(), 4u);
}

} // namespace
} // namespace autofl
