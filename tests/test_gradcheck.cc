/**
 * @file
 * Numerical gradient checks: every layer's analytic backward pass is
 * validated against central finite differences, across a sweep of
 * shapes and configurations.
 */
#include "test_util.h"

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/layers_basic.h"
#include "nn/lstm.h"
#include "nn/models.h"

namespace autofl {
namespace {

using testing::check_layer_gradients;
using testing::randomize;

struct DenseCase
{
    int batch, in, out;
};

class DenseGradTest : public ::testing::TestWithParam<DenseCase>
{
};

TEST_P(DenseGradTest, MatchesFiniteDifferences)
{
    const auto c = GetParam();
    Dense layer(c.in, c.out);
    Rng rng(7);
    layer.init_weights(rng);
    check_layer_gradients(layer, {c.batch, c.in});
}

INSTANTIATE_TEST_SUITE_P(Shapes, DenseGradTest,
                         ::testing::Values(DenseCase{1, 3, 2},
                                           DenseCase{4, 8, 5},
                                           DenseCase{2, 16, 10},
                                           DenseCase{7, 5, 1},
                                           DenseCase{3, 1, 6}));

struct ConvCase
{
    int batch, in_ch, out_ch, side, kernel, stride, pad, groups;
};

class ConvGradTest : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvGradTest, MatchesFiniteDifferences)
{
    const auto c = GetParam();
    Conv2D layer(c.in_ch, c.out_ch, c.kernel, c.stride, c.pad, c.groups);
    Rng rng(11);
    layer.init_weights(rng);
    check_layer_gradients(layer, {c.batch, c.in_ch, c.side, c.side});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvGradTest,
    ::testing::Values(ConvCase{1, 1, 2, 5, 3, 1, 0, 1},
                      ConvCase{2, 3, 4, 6, 3, 1, 1, 1},
                      ConvCase{1, 2, 2, 6, 3, 2, 1, 1},
                      ConvCase{2, 4, 4, 5, 3, 1, 1, 4},   // depthwise
                      ConvCase{1, 4, 8, 4, 1, 1, 0, 1},   // pointwise
                      ConvCase{2, 6, 6, 5, 3, 1, 1, 2},   // grouped
                      ConvCase{1, 1, 1, 7, 5, 2, 2, 1}));

struct PoolCase
{
    int batch, ch, side, k, stride;
};

class PoolGradTest : public ::testing::TestWithParam<PoolCase>
{
};

TEST_P(PoolGradTest, MaxPoolMatchesFiniteDifferences)
{
    const auto c = GetParam();
    MaxPool2D layer(c.k, c.stride);
    check_layer_gradients(layer, {c.batch, c.ch, c.side, c.side});
}

INSTANTIATE_TEST_SUITE_P(Shapes, PoolGradTest,
                         ::testing::Values(PoolCase{1, 1, 4, 2, 2},
                                           PoolCase{2, 3, 6, 2, 2},
                                           PoolCase{1, 2, 6, 3, 3},
                                           PoolCase{2, 2, 5, 2, 1}));

TEST(GradCheck, ReLU)
{
    ReLU layer;
    check_layer_gradients(layer, {3, 7});
}

TEST(GradCheck, GlobalAvgPool)
{
    GlobalAvgPool layer;
    check_layer_gradients(layer, {2, 3, 4, 4});
}

TEST(GradCheck, Flatten)
{
    Flatten layer;
    check_layer_gradients(layer, {2, 3, 4, 4});
}

struct LstmCase
{
    int time, batch, in, hidden;
    bool seq;
};

class LstmGradTest : public ::testing::TestWithParam<LstmCase>
{
};

TEST_P(LstmGradTest, MatchesFiniteDifferences)
{
    const auto c = GetParam();
    Lstm layer(c.in, c.hidden, c.seq);
    Rng rng(13);
    layer.init_weights(rng);
    check_layer_gradients(layer, {c.time, c.batch, c.in});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LstmGradTest,
    ::testing::Values(LstmCase{1, 1, 3, 2, false},
                      LstmCase{3, 2, 4, 5, false},
                      LstmCase{5, 1, 2, 3, false},
                      LstmCase{2, 3, 3, 4, true},
                      LstmCase{4, 2, 5, 3, true}));

/** Whole-model gradient check through the cross-entropy loss. */
class ModelGradTest : public ::testing::TestWithParam<Workload>
{
};

TEST_P(ModelGradTest, LossGradientMatchesFiniteDifferences)
{
    const Workload w = GetParam();
    Sequential model = make_model(w);
    Rng rng(17);
    model.init_weights(rng);

    const int batch = 2;
    Tensor x(model_batch_shape(w, batch));
    randomize(x, rng);
    std::vector<int> labels = {0, model_num_classes(w) - 1};

    SoftmaxCrossEntropy loss;
    model.zero_grad();
    loss.forward(model.forward(x), labels);
    model.backward(loss.backward());

    // Finite-difference a handful of parameters in every layer.
    auto params = model.params();
    auto grads = model.grads();
    const float eps = 1e-2f;
    for (size_t p = 0; p < params.size(); ++p) {
        Tensor &wt = *params[p];
        const Tensor &g = *grads[p];
        const size_t stride = std::max<size_t>(1, wt.size() / 5);
        for (size_t i = 0; i < wt.size(); i += stride) {
            const float saved = wt[i];
            const double center = loss.forward(model.forward(x), labels);
            wt[i] = saved + eps;
            const double up = loss.forward(model.forward(x), labels);
            wt[i] = saved - eps;
            const double down = loss.forward(model.forward(x), labels);
            wt[i] = saved;
            const double numeric = (up - down) / (2.0 * eps);
            // Detect ReLU/maxpool kinks inside the probe interval: when
            // one-sided slopes disagree, the loss is not smooth here and
            // the central difference is meaningless — skip the point.
            const double fwd = (up - center) / eps;
            const double bwd = (center - down) / eps;
            if (std::abs(fwd - bwd) >
                0.1 * std::max({std::abs(fwd), std::abs(bwd), 0.05}))
                continue;
            const double analytic = g[i];
            // Float32 activations through pool/ReLU kinks limit
            // finite-difference agreement at the model level; tiny
            // absolute disagreements are noise, not backprop bugs. The
            // tight checks are the per-layer ones above.
            if (std::abs(analytic - numeric) < 0.02)
                continue;
            const double denom = std::max(
                {0.05, std::abs(numeric), std::abs(analytic)});
            EXPECT_NEAR(analytic / denom, numeric / denom, 0.15)
                << "param " << p << " index " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ModelGradTest,
                         ::testing::ValuesIn(all_workloads()),
                         [](const auto &info) {
                             switch (info.param) {
                               case Workload::CnnMnist:
                                 return "CnnMnist";
                               case Workload::LstmShakespeare:
                                 return "LstmShakespeare";
                               default:
                                 return "MobileNetImageNet";
                             }
                         });

} // namespace
} // namespace autofl
