/** @file NN layer semantics, loss, SGD, Sequential and model-zoo tests. */
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/layers_basic.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/models.h"
#include "nn/sgd.h"

namespace autofl {
namespace {

TEST(Dense, ForwardComputesAffine)
{
    Dense d(2, 2);
    // w = [[1, 2], [3, 4]], b = [10, 20].
    d.params()[0]->vec() = {1, 2, 3, 4};
    d.params()[1]->vec() = {10, 20};
    Tensor x({1, 2}, std::vector<float>{1, 1});
    Tensor y = d.forward(x);
    EXPECT_FLOAT_EQ(y.at2(0, 0), 14.0f);
    EXPECT_FLOAT_EQ(y.at2(0, 1), 26.0f);
}

TEST(Dense, OutputShapeAndFlops)
{
    Dense d(8, 3);
    EXPECT_EQ(d.output_shape({4, 8}), (std::vector<int>{4, 3}));
    EXPECT_DOUBLE_EQ(d.flops_per_sample({1, 8}), 2.0 * 8 * 3);
    EXPECT_EQ(d.kind(), LayerKind::Fc);
}

TEST(Conv2D, IdentityKernelPassesThrough)
{
    Conv2D c(1, 1, 1);
    c.params()[0]->vec() = {1.0f};
    c.params()[1]->vec() = {0.0f};
    Tensor x({1, 1, 3, 3});
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(i);
    Tensor y = c.forward(x);
    ASSERT_EQ(y.shape(), x.shape());
    for (size_t i = 0; i < y.size(); ++i)
        EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2D, OutputShapeWithStridePad)
{
    Conv2D c(3, 8, 3, 2, 1);
    auto out = c.output_shape({2, 3, 8, 8});
    EXPECT_EQ(out, (std::vector<int>{2, 8, 4, 4}));
    EXPECT_EQ(c.kind(), LayerKind::Conv);
}

TEST(Conv2D, DepthwiseKeepsChannelsSeparate)
{
    Conv2D c(2, 2, 1, 1, 0, 2);
    c.params()[0]->vec() = {2.0f, 3.0f};  // per-channel scale
    c.params()[1]->vec() = {0.0f, 0.0f};
    Tensor x({1, 2, 1, 1}, std::vector<float>{5.0f, 7.0f});
    Tensor y = c.forward(x);
    EXPECT_FLOAT_EQ(y[0], 10.0f);
    EXPECT_FLOAT_EQ(y[1], 21.0f);
}

TEST(ReLU, ClampsNegatives)
{
    ReLU r;
    Tensor x({1, 4}, std::vector<float>{-1, 0, 2, -3});
    Tensor y = r.forward(x);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 0.0f);
    EXPECT_FLOAT_EQ(y[2], 2.0f);
    EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(MaxPool2D, SelectsWindowMax)
{
    MaxPool2D p(2);
    Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
    Tensor y = p.forward(x);
    ASSERT_EQ(y.size(), 1u);
    EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(MaxPool2D, BackwardRoutesToArgmax)
{
    MaxPool2D p(2);
    Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
    p.forward(x);
    Tensor g({1, 1, 1, 1}, std::vector<float>{2.0f});
    Tensor dx = p.backward(g);
    EXPECT_FLOAT_EQ(dx[0], 0.0f);
    EXPECT_FLOAT_EQ(dx[1], 2.0f);
    EXPECT_FLOAT_EQ(dx[2], 0.0f);
}

TEST(GlobalAvgPool, Averages)
{
    GlobalAvgPool p;
    Tensor x({1, 2, 2, 2});
    for (int i = 0; i < 4; ++i)
        x[static_cast<size_t>(i)] = static_cast<float>(i + 1);  // ch 0
    for (int i = 4; i < 8; ++i)
        x[static_cast<size_t>(i)] = 10.0f;  // ch 1
    Tensor y = p.forward(x);
    EXPECT_FLOAT_EQ(y.at2(0, 0), 2.5f);
    EXPECT_FLOAT_EQ(y.at2(0, 1), 10.0f);
}

TEST(Flatten, CollapsesTrailingDims)
{
    Flatten f;
    Tensor x({2, 3, 2, 2});
    Tensor y = f.forward(x);
    EXPECT_EQ(y.shape(), (std::vector<int>{2, 12}));
    Tensor dx = f.backward(y);
    EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Lstm, ShapesLastAndSequence)
{
    Lstm last(4, 6, false);
    EXPECT_EQ(last.output_shape({5, 3, 4}), (std::vector<int>{3, 6}));
    Lstm seq(4, 6, true);
    EXPECT_EQ(seq.output_shape({5, 3, 4}), (std::vector<int>{5, 3, 6}));
    EXPECT_EQ(last.kind(), LayerKind::Recurrent);
}

TEST(Lstm, ForgetBiasInitialized)
{
    Lstm l(3, 4);
    Rng rng(1);
    l.init_weights(rng);
    const Tensor &b = *l.params()[2];
    for (int j = 4; j < 8; ++j)
        EXPECT_FLOAT_EQ(b[static_cast<size_t>(j)], 1.0f);
    for (int j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(b[static_cast<size_t>(j)], 0.0f);
}

TEST(Lstm, ZeroInputGivesBoundedOutput)
{
    Lstm l(2, 3);
    Rng rng(2);
    l.init_weights(rng);
    Tensor x({4, 2, 2});
    Tensor h = l.forward(x);
    for (size_t i = 0; i < h.size(); ++i) {
        EXPECT_GT(h[i], -1.0f);
        EXPECT_LT(h[i], 1.0f);
    }
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC)
{
    SoftmaxCrossEntropy l;
    Tensor logits({2, 4});
    const double loss = l.forward(logits, {1, 3});
    EXPECT_NEAR(loss, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, ProbsSumToOne)
{
    SoftmaxCrossEntropy l;
    Tensor logits({1, 3}, std::vector<float>{1.0f, 2.0f, 3.0f});
    l.forward(logits, {2});
    double sum = 0.0;
    for (int c = 0; c < 3; ++c)
        sum += l.probs().at2(0, c);
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(SoftmaxCrossEntropy, CorrectCountsArgmaxHits)
{
    SoftmaxCrossEntropy l;
    Tensor logits({2, 2}, std::vector<float>{5.0f, 0.0f, 0.0f, 5.0f});
    l.forward(logits, {0, 0});
    EXPECT_EQ(l.correct(), 1);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow)
{
    SoftmaxCrossEntropy l;
    Tensor logits({1, 5}, std::vector<float>{0.2f, -1.0f, 2.0f, 0.0f, 1.0f});
    l.forward(logits, {3});
    Tensor g = l.backward();
    double sum = 0.0;
    for (size_t i = 0; i < g.size(); ++i)
        sum += g[i];
    EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST(ArgmaxRows, PicksLargest)
{
    Tensor logits({2, 3}, std::vector<float>{1, 9, 2, 7, 1, 3});
    auto a = argmax_rows(logits);
    EXPECT_EQ(a, (std::vector<int>{1, 0}));
}

TEST(Sgd, PlainStepDescends)
{
    Sequential m;
    m.emplace<Dense>(1, 1);
    m.params()[0]->vec() = {2.0f};
    m.params()[1]->vec() = {0.0f};
    // grad(w) = 1 -> w decreases by lr.
    m.grads()[0]->vec() = {1.0f};
    m.grads()[1]->vec() = {0.0f};
    Sgd opt(0.1);
    opt.step(m);
    EXPECT_NEAR((*m.params()[0])[0], 1.9f, 1e-6f);
}

TEST(Sgd, MomentumAccumulates)
{
    Sequential m;
    m.emplace<Dense>(1, 1);
    m.params()[0]->vec() = {0.0f};
    Sgd opt(0.1, 0.9);
    for (int i = 0; i < 2; ++i) {
        m.grads()[0]->vec() = {1.0f};
        m.grads()[1]->vec() = {0.0f};
        opt.step(m);
    }
    // Step 1: v=1 -> w=-0.1; step 2: v=1.9 -> w=-0.29.
    EXPECT_NEAR((*m.params()[0])[0], -0.29f, 1e-5f);
}

TEST(Sgd, ProxPullsTowardAnchor)
{
    Sequential m;
    m.emplace<Dense>(1, 1);
    m.params()[0]->vec() = {1.0f};
    m.params()[1]->vec() = {0.0f};
    m.zero_grad();
    Sgd opt(0.1);
    // Zero gradient, anchor at 0, mu = 1: w moves toward 0.
    opt.step_prox(m, std::vector<float>{0.0f, 0.0f}, 1.0);
    EXPECT_NEAR((*m.params()[0])[0], 0.9f, 1e-6f);
}

TEST(Sequential, FlatWeightsRoundTrip)
{
    Sequential m = make_model(Workload::CnnMnist);
    Rng rng(3);
    m.init_weights(rng);
    auto w = m.flat_weights();
    EXPECT_EQ(w.size(), m.num_params());
    // Perturb, restore, compare.
    Sequential m2 = make_model(Workload::CnnMnist);
    m2.set_flat_weights(w);
    EXPECT_EQ(m2.flat_weights(), w);
}

TEST(Sequential, ZeroGradClearsAll)
{
    Sequential m = make_model(Workload::CnnMnist);
    for (Tensor *g : m.grads())
        g->fill(1.0f);
    m.zero_grad();
    for (Tensor *g : m.grads())
        for (size_t i = 0; i < g->size(); ++i)
            ASSERT_EQ((*g)[i], 0.0f);
}

class ModelZooTest : public ::testing::TestWithParam<Workload>
{
};

TEST_P(ModelZooTest, ForwardShapeMatchesClassCount)
{
    const Workload w = GetParam();
    Sequential m = make_model(w);
    Rng rng(4);
    m.init_weights(rng);
    const int batch = 3;
    Tensor x(model_batch_shape(w, batch));
    Tensor y = m.forward(x);
    EXPECT_EQ(y.shape(), (std::vector<int>{batch, model_num_classes(w)}));
}

TEST_P(ModelZooTest, ProfileMatchesArchitecture)
{
    const Workload w = GetParam();
    const NnProfile p = model_profile(w);
    EXPECT_GT(p.flops_per_sample, 0.0);
    EXPECT_GT(p.model_bytes, 0.0);
    switch (w) {
      case Workload::CnnMnist:
        EXPECT_EQ(p.conv_layers, 2);
        EXPECT_EQ(p.fc_layers, 2);
        EXPECT_EQ(p.rc_layers, 0);
        break;
      case Workload::LstmShakespeare:
        EXPECT_EQ(p.conv_layers, 0);
        EXPECT_EQ(p.fc_layers, 1);
        EXPECT_EQ(p.rc_layers, 2);
        break;
      case Workload::MobileNetImageNet:
        EXPECT_EQ(p.conv_layers, 11);
        EXPECT_EQ(p.fc_layers, 1);
        EXPECT_EQ(p.rc_layers, 0);
        break;
    }
}

TEST_P(ModelZooTest, LstmIsMostMemoryBound)
{
    // The per-layer-kind memory-boundness orders the workloads as the
    // paper's characterization requires: RC-heavy most memory-bound.
    const double mb_lstm =
        model_profile(Workload::LstmShakespeare).mem_bound_frac;
    const double mb_cnn = model_profile(Workload::CnnMnist).mem_bound_frac;
    const double mb_mob =
        model_profile(Workload::MobileNetImageNet).mem_bound_frac;
    EXPECT_GT(mb_lstm, 0.6);
    EXPECT_LT(mb_cnn, 0.35);
    EXPECT_LT(mb_mob, 0.35);
    EXPECT_GT(mb_lstm, mb_cnn);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ModelZooTest,
                         ::testing::ValuesIn(all_workloads()));

TEST(ModelZoo, NamesAreDistinct)
{
    EXPECT_EQ(workload_name(Workload::CnnMnist), "CNN-MNIST");
    EXPECT_EQ(workload_name(Workload::LstmShakespeare), "LSTM-Shakespeare");
    EXPECT_EQ(workload_name(Workload::MobileNetImageNet),
              "MobileNet-ImageNet");
}

} // namespace
} // namespace autofl
