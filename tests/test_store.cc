/**
 * @file
 * Snapshot persistence tests: on-disk format round trips (bit-exact
 * f32 payloads), the corruption fuzz sweep (every truncation and every
 * byte flip → a typed SnapshotStatus, never a crash — mirroring
 * test_net.cc's wire fuzz), the asynchronous CheckpointWriter's
 * never-block/drop/IO-failure contract, crash-resume bit-parity across
 * the runtimes, and the mmap cold-start serving path.
 */
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "fl/system.h"
#include "serve/model_service.h"
#include "serve/serving_gateway.h"
#include "store/checkpoint_writer.h"
#include "store/mapped_snapshot.h"
#include "store/model_registry.h"
#include "store/snapshot.h"
#include "test_util.h"

namespace autofl {
namespace {

using store::CheckpointWriter;
using store::MappedSnapshot;
using store::ShardRange;
using store::SnapshotData;
using store::SnapshotMeta;
using store::SnapshotStatus;
using store::SnapshotView;
using testing::random_weights;
using testing::small_test_set;

/**
 * A unique scratch directory under the system temp dir, wiped on setup
 * and removed on scope exit — tests leave no litter in the CWD however
 * they end (short of a crash, where the next same-named run wipes it).
 */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
    {
        namespace fs = std::filesystem;
        path_ = (fs::temp_directory_path() /
                 ("autofl_store_test_" + name + "_" +
                  std::to_string(static_cast<long>(::getpid()))))
                    .string();
        std::error_code ec;
        fs::remove_all(path_, ec);
        fs::create_directories(path_, ec);
    }

    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);  // Best-effort cleanup.
    }

    ScratchDir(const ScratchDir &) = delete;
    ScratchDir &operator=(const ScratchDir &) = delete;

    operator const std::string &() const { return path_; }
    const std::string &str() const { return path_; }
    /** "<scratch>/<suffix>" (string's operator+ cannot deduce us). */
    std::string operator+(const char *suffix) const
    {
        return path_ + suffix;
    }

  private:
    std::string path_;
};

/** Deterministic weights with varied bit patterns (incl. negatives). */
std::vector<float>
pattern_weights(size_t n)
{
    std::vector<float> w(n);
    for (size_t i = 0; i < n; ++i)
        w[i] = (static_cast<float>(i % 97) - 48.0f) * 0.03125f;
    return w;
}

SnapshotMeta
meta_for(const std::vector<float> &w, uint32_t shards = 4)
{
    SnapshotMeta m;
    m.epoch = 7;
    m.round = 6;
    m.dim = w.size();
    m.topology_hash = store::model_topology_hash("CNN-MNIST", w.size());
    m.shard_count = shards;
    return m;
}

// ------------------------------------------------------------ format --

TEST(SnapshotFormat, SerializeParseRoundTripBitExact)
{
    const std::vector<float> w = pattern_weights(1000);
    const SnapshotMeta meta = meta_for(w);
    const auto shards = store::even_shard_ranges(meta.dim, meta.shard_count);
    const std::vector<uint8_t> buf =
        store::serialize_snapshot(meta, shards, w.data());
    EXPECT_EQ(buf.size(), store::snapshot_bytes(meta));

    SnapshotView view;
    ASSERT_EQ(store::parse_snapshot(buf.data(), buf.size(), &view),
              SnapshotStatus::Ok);
    EXPECT_EQ(view.meta.epoch, meta.epoch);
    EXPECT_EQ(view.meta.round, meta.round);
    EXPECT_EQ(view.meta.dim, meta.dim);
    EXPECT_EQ(view.meta.topology_hash, meta.topology_hash);
    ASSERT_EQ(view.shards.size(), shards.size());
    for (size_t s = 0; s < shards.size(); ++s) {
        EXPECT_EQ(view.shards[s].begin, shards[s].begin);
        EXPECT_EQ(view.shards[s].end, shards[s].end);
    }
    // Bit images, not values: the payload survives exactly.
    EXPECT_EQ(std::memcmp(view.weights, w.data(), 4 * w.size()), 0);
}

TEST(SnapshotFormat, PayloadIs64ByteAligned)
{
    for (uint32_t shards : {1u, 3u, 4u, 8u, 17u}) {
        const std::vector<float> w = pattern_weights(64);
        SnapshotMeta meta = meta_for(w, shards);
        const auto ranges = store::even_shard_ranges(meta.dim, shards);
        const std::vector<uint8_t> buf =
            store::serialize_snapshot(meta, ranges, w.data());
        SnapshotView view;
        ASSERT_EQ(store::parse_snapshot(buf.data(), buf.size(), &view),
                  SnapshotStatus::Ok);
        const auto off = static_cast<size_t>(
            reinterpret_cast<const uint8_t *>(view.weights) - buf.data());
        EXPECT_EQ(off % store::kSnapshotAlign, 0u) << shards << " shards";
    }
}

TEST(SnapshotFormat, EvenShardRangesMatchStoreSplit)
{
    // Same layout as ShardedStore: base dim/n, first dim%n one larger.
    const auto r = store::even_shard_ranges(10, 4);
    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(r[0].begin, 0u);
    EXPECT_EQ(r[0].end, 3u);
    EXPECT_EQ(r[1].end, 6u);
    EXPECT_EQ(r[2].end, 8u);
    EXPECT_EQ(r[3].end, 10u);
}

TEST(SnapshotFormat, TopologyHashSeparatesModelsAndDims)
{
    const uint64_t a = store::model_topology_hash("CNN-MNIST", 1000);
    EXPECT_NE(a, store::model_topology_hash("LSTM-Shakespeare", 1000));
    EXPECT_NE(a, store::model_topology_hash("CNN-MNIST", 1001));
    EXPECT_EQ(a, store::model_topology_hash("CNN-MNIST", 1000));
    EXPECT_NE(a, 0u);  // 0 is reserved for "no expectation".
}

TEST(SnapshotFormat, TopologyMismatchIsTyped)
{
    const std::vector<float> w = pattern_weights(100);
    const SnapshotMeta meta = meta_for(w);
    const auto buf = store::serialize_snapshot(
        meta, store::even_shard_ranges(meta.dim, meta.shard_count),
        w.data());
    SnapshotView view;
    EXPECT_EQ(store::parse_snapshot(buf.data(), buf.size(), &view,
                                    meta.topology_hash + 1),
              SnapshotStatus::BadTopology);
    EXPECT_EQ(store::parse_snapshot(buf.data(), buf.size(), &view,
                                    meta.topology_hash),
              SnapshotStatus::Ok);
}

// -------------------------------------------------- corruption sweep --

TEST(SnapshotFuzz, EveryTruncationIsTypedNeverACrash)
{
    const std::vector<float> w = pattern_weights(96);
    const SnapshotMeta meta = meta_for(w);
    const auto buf = store::serialize_snapshot(
        meta, store::even_shard_ranges(meta.dim, meta.shard_count),
        w.data());
    // Every proper prefix must parse to a typed error (the file shrank
    // or the write was torn mid-copy pre-rename — never a crash, never
    // Ok).
    for (size_t len = 0; len < buf.size(); ++len) {
        SnapshotView view;
        const SnapshotStatus st =
            store::parse_snapshot(buf.data(), len, &view);
        EXPECT_NE(st, SnapshotStatus::Ok) << "prefix " << len;
    }
}

TEST(SnapshotFuzz, EveryByteFlipIsDetected)
{
    const std::vector<float> w = pattern_weights(64);
    const SnapshotMeta meta = meta_for(w);
    const auto buf = store::serialize_snapshot(
        meta, store::even_shard_ranges(meta.dim, meta.shard_count),
        w.data());
    // Flip one bit of every byte: header flips break the header
    // checksum (or a validated field), payload flips break the payload
    // checksum. No flip may crash or parse Ok.
    for (size_t at = 0; at < buf.size(); ++at) {
        std::vector<uint8_t> bad = buf;
        bad[at] ^= 0x10;
        SnapshotView view;
        const SnapshotStatus st =
            store::parse_snapshot(bad.data(), bad.size(), &view);
        EXPECT_NE(st, SnapshotStatus::Ok) << "byte " << at;
    }
}

TEST(SnapshotFuzz, TypedStatusesForSpecificCorruptions)
{
    const std::vector<float> w = pattern_weights(32);
    const SnapshotMeta meta = meta_for(w, 2);
    const auto good = store::serialize_snapshot(
        meta, store::even_shard_ranges(meta.dim, 2), w.data());

    auto parse = [](std::vector<uint8_t> b) {
        SnapshotView v;
        return store::parse_snapshot(b.data(), b.size(), &v);
    };
    auto with = [&](size_t at, std::initializer_list<uint8_t> bytes) {
        std::vector<uint8_t> b = good;
        size_t i = at;
        for (uint8_t v : bytes)
            b[i++] = v;
        return b;
    };

    EXPECT_EQ(parse(with(0, {0xde, 0xad, 0xbe, 0xef})),
              SnapshotStatus::BadMagic);
    EXPECT_EQ(parse(with(4, {0x63, 0x00})), SnapshotStatus::BadVersion);
    // Header-field corruptions break the header checksum first — the
    // reader never acts on an unauthenticated length or count.
    EXPECT_EQ(parse(with(24, {0xff})), SnapshotStatus::BadChecksum);
    EXPECT_EQ(parse(with(40, {0x00})), SnapshotStatus::BadChecksum);
    // Trailing garbage is structural, not a checksum matter.
    {
        std::vector<uint8_t> b = good;
        b.push_back(0);
        EXPECT_EQ(parse(b), SnapshotStatus::BadHeader);
    }

    // A shard table violating the tiling invariant, re-signed with
    // valid checksums, must still be rejected — structure is checked
    // even when the bytes authenticate.
    {
        std::vector<float> w2 = pattern_weights(32);
        auto bad_shards = store::even_shard_ranges(32, 2);
        bad_shards[0].end -= 1;  // Gap between shard 0 and shard 1.
        const auto b =
            store::serialize_snapshot(meta_for(w2, 2), bad_shards,
                                      w2.data());
        EXPECT_EQ(parse(b), SnapshotStatus::BadShardTable);
    }
}

TEST(SnapshotFile, MissingAndOversizedFilesAreTyped)
{
    SnapshotData data;
    EXPECT_EQ(store::read_snapshot_file("/nonexistent/nowhere.snap", &data),
              SnapshotStatus::IoError);
    SnapshotStatus st = SnapshotStatus::Ok;
    EXPECT_EQ(MappedSnapshot::open("/nonexistent/nowhere.snap", &st),
              nullptr);
    EXPECT_EQ(st, SnapshotStatus::IoError);

    // A header declaring an absurd dim must be rejected without
    // allocating for it.
    const ScratchDir dir("oversized");
    const std::vector<float> w = pattern_weights(16);
    SnapshotMeta meta = meta_for(w, 1);
    auto buf =
        store::serialize_snapshot(meta, store::even_shard_ranges(16, 1),
                                  w.data());
    // dim at offset 24 (LE): rewrite to kMax+1 and re-sign the header
    // so the oversize check — not the checksum — is what fires.
    const uint64_t huge = store::kMaxSnapshotFloats + 1;
    for (int i = 0; i < 8; ++i)
        buf[24 + static_cast<size_t>(i)] =
            static_cast<uint8_t>(huge >> (8 * i));
    SnapshotView view;
    // Header checksum now mismatches; both orders reject, neither
    // crashes nor allocates. (BadChecksum here, Oversized if an
    // attacker re-signs — covered by parse order below.)
    EXPECT_NE(store::parse_snapshot(buf.data(), buf.size(), &view),
              SnapshotStatus::Ok);
}

// ------------------------------------------------------- file writer --

TEST(SnapshotFile, WriteReadRoundTrip)
{
    const ScratchDir dir("roundtrip");
    const std::string path = dir + "/model.snap";
    const std::vector<float> w = pattern_weights(500);
    const SnapshotMeta meta = meta_for(w);

    ASSERT_EQ(store::write_snapshot_file(
                  path, meta,
                  store::even_shard_ranges(meta.dim, meta.shard_count),
                  w.data()),
              SnapshotStatus::Ok);

    SnapshotData data;
    ASSERT_EQ(store::read_snapshot_file(path, &data), SnapshotStatus::Ok);
    EXPECT_EQ(data.meta.epoch, meta.epoch);
    EXPECT_EQ(data.meta.round, meta.round);
    EXPECT_EQ(data.weights, w);  // Bit-exact through the disk.

    // No temp litter after a successful write.
    SnapshotStatus st;
    auto mapped = MappedSnapshot::open(path, &st);
    ASSERT_NE(mapped, nullptr);
    EXPECT_EQ(st, SnapshotStatus::Ok);
    EXPECT_EQ(std::memcmp(mapped->weights(), w.data(), 4 * w.size()), 0);
    EXPECT_EQ(mapped->meta().epoch, meta.epoch);
}

TEST(SnapshotFile, UnwritableDirectoryIsTypedNotThrown)
{
    const std::vector<float> w = pattern_weights(8);
    const SnapshotMeta meta = meta_for(w, 1);
    EXPECT_EQ(store::write_snapshot_file(
                  "/nonexistent/dir/model.snap", meta,
                  store::even_shard_ranges(meta.dim, 1), w.data()),
              SnapshotStatus::IoError);
}

// -------------------------------------------------- checkpoint writer --

TEST(CheckpointWriter, WritesArtifactsAndRepointsLatest)
{
    const ScratchDir dir("writer");
    const std::vector<float> w0 = pattern_weights(200);
    std::vector<float> w1 = w0;
    w1[0] += 1.0f;
    const uint64_t topo = store::model_topology_hash("CNN-MNIST", w0.size());

    CheckpointWriter wr(dir, topo, 4);
    wr.request(0, 1, std::make_shared<const std::vector<float>>(w0));
    wr.flush();
    wr.request(1, 2, std::make_shared<const std::vector<float>>(w1));
    wr.flush();

    const auto st = wr.stats();
    EXPECT_EQ(st.requested, 2u);
    EXPECT_EQ(st.written, 2u);
    EXPECT_EQ(st.dropped, 0u);
    EXPECT_EQ(st.last_status, SnapshotStatus::Ok);

    SnapshotData d0, dl;
    ASSERT_EQ(store::read_snapshot_file(wr.artifact_path(0), &d0, topo),
              SnapshotStatus::Ok);
    EXPECT_EQ(d0.weights, w0);
    EXPECT_EQ(d0.meta.round, 0u);
    // latest.snap names the newest complete artifact.
    ASSERT_EQ(store::read_snapshot_file(wr.latest_path(), &dl, topo),
              SnapshotStatus::Ok);
    EXPECT_EQ(dl.meta.round, 1u);
    EXPECT_EQ(dl.weights, w1);
}

TEST(CheckpointWriter, DestructorDrainsLastRequest)
{
    const ScratchDir dir("drain");
    const std::vector<float> w = pattern_weights(64);
    const uint64_t topo = store::model_topology_hash("CNN-MNIST", w.size());
    {
        CheckpointWriter wr(dir, topo, 2);
        wr.request(5, 6, std::make_shared<const std::vector<float>>(w));
        // No flush: the destructor must persist the accepted request.
    }
    SnapshotData d;
    ASSERT_EQ(store::read_snapshot_file(dir + "/latest.snap", &d, topo),
              SnapshotStatus::Ok);
    EXPECT_EQ(d.meta.round, 5u);
    EXPECT_EQ(d.weights, w);
}

TEST(CheckpointWriter, UnwritableDirRecordsIoErrorNeverThrows)
{
    const std::vector<float> w = pattern_weights(16);
    CheckpointWriter wr("/nonexistent/parent/dir",
                        store::model_topology_hash("CNN-MNIST", w.size()),
                        1);
    wr.request(0, 1, std::make_shared<const std::vector<float>>(w));
    wr.flush();
    EXPECT_EQ(wr.stats().last_status, SnapshotStatus::IoError);
    EXPECT_EQ(wr.stats().written, 0u);
}

// --------------------------------------------------- crash-resume ----

FlSystemConfig
small_job(int pipeline_depth, int staleness)
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.data.train_samples = 192;
    cfg.data.test_samples = 64;
    cfg.partition.num_devices = 8;
    cfg.params.k = 4;
    cfg.params.epochs = 1;
    cfg.params.batch_size = 8;
    cfg.threads = 4;
    cfg.seed = 2021;
    if (pipeline_depth > 1 || staleness >= 0) {
        cfg.ps.mode = SyncMode::SemiAsync;
        cfg.ps.staleness_bound = staleness < 0 ? 0 : staleness;
        cfg.ps.pipeline_depth = pipeline_depth;
    }
    return cfg;
}

/** Deterministic participants: a pure function of the round. */
std::vector<int>
participants(uint64_t round, int num_devices, int k)
{
    std::vector<int> ids;
    for (int i = 0; i < k; ++i)
        ids.push_back(static_cast<int>((round * 3 +
                                        static_cast<uint64_t>(i) * 2 + 1) %
                                       static_cast<uint64_t>(num_devices)));
    return ids;
}

/** Run rounds [first, last] on @p fl, one run_round per round. */
void
run_rounds(FlSystem &fl, uint64_t first, uint64_t last)
{
    for (uint64_t r = first; r <= last; ++r)
        fl.run_round(participants(r, fl.num_devices(), 4), r);
    fl.drain();
}

/**
 * The crash-resume determinism contract: train with checkpoints, take
 * the artifact at round R, build a fresh system resuming from it, run
 * the remaining rounds, and the final weights must be bit-identical
 * to the uninterrupted run. Holds for every runtime whose rounds
 * commit in a single batch (Sync; SemiAsync S=0 classic and pipelined
 * — the same contract SemiAsync(S=0) == Sync sets).
 */
void
expect_bit_exact_resume(FlSystemConfig cfg, const std::string &tag)
{
    constexpr uint64_t kRounds = 6;    // Rounds 0..5.
    constexpr uint64_t kCut = 2;       // Resume from round 2's artifact.
    const ScratchDir dir("resume_" + tag);

    // Uninterrupted reference.
    FlSystemConfig ref_cfg = cfg;
    FlSystem ref(ref_cfg);
    run_rounds(ref, 0, kRounds - 1);
    const std::vector<float> expect = ref.server().global_weights();

    // Interrupted run: checkpoint every round, stop after kCut.
    FlSystemConfig a_cfg = cfg;
    a_cfg.ps.snapshot_dir = dir;
    {
        FlSystem a(a_cfg);
        run_rounds(a, 0, kCut);
        ASSERT_NE(a.checkpoint_writer(), nullptr);
        a.checkpoint_writer()->flush();
        ASSERT_EQ(a.checkpoint_writer()->stats().last_status,
                  SnapshotStatus::Ok);
    }

    // Resume from the artifact and run the remaining rounds.
    FlSystemConfig b_cfg = cfg;
    b_cfg.ps.resume_from = dir + "/model-r" + std::to_string(kCut) +
        ".snap";
    FlSystem b(b_cfg);
    ASSERT_TRUE(b.resumed());
    EXPECT_EQ(b.resume_round(), kCut);
    run_rounds(b, kCut + 1, kRounds - 1);

    EXPECT_EQ(b.server().global_weights(), expect)
        << tag << ": resumed run diverged from the uninterrupted run";
}

TEST(CrashResume, SyncRuntimeBitExact)
{
    expect_bit_exact_resume(small_job(1, -1), "sync");
}

TEST(CrashResume, ClassicSemiAsyncS0BitExact)
{
    expect_bit_exact_resume(small_job(1, 0), "classic_s0");
}

TEST(CrashResume, PipelinedSemiAsyncS0BitExact)
{
    // The tentpole contract: checkpoint mid-pipelined-run, kill,
    // restore, bit-identical final weights. Depth 3 keeps rounds
    // overlapping while S=0 keeps each round single-batch.
    expect_bit_exact_resume(small_job(3, 0), "pipelined_s0");
}

TEST(CrashResume, ResumeRejectsWrongModelArtifact)
{
    const ScratchDir dir("wrongmodel");
    // Write an artifact of the right byte size but the wrong topology.
    FlSystemConfig cfg = small_job(1, -1);
    FlSystem probe(cfg);
    const size_t dim = probe.server().global_weights().size();
    const std::vector<float> w = pattern_weights(dim);
    SnapshotMeta meta;
    meta.dim = dim;
    meta.shard_count = 1;
    meta.topology_hash = store::model_topology_hash("LSTM-Shakespeare", dim);
    ASSERT_EQ(store::write_snapshot_file(dir + "/wrong.snap", meta,
                                         store::even_shard_ranges(dim, 1),
                                         w.data()),
              SnapshotStatus::Ok);

    cfg.ps.resume_from = dir + "/wrong.snap";
    EXPECT_THROW(FlSystem{cfg}, std::runtime_error);
}

TEST(CrashResume, PipelinedCheckpointCadenceAndOverlapSafety)
{
    // snapshot_every_epochs thins the cadence; the writer never sees a
    // round that is not due, and a pipelined run's artifacts parse Ok.
    const ScratchDir dir("cadence");
    FlSystemConfig cfg = small_job(3, 0);
    cfg.ps.snapshot_dir = dir;
    cfg.ps.snapshot_every_epochs = 2;  // Rounds 1, 3, 5, ...
    FlSystem fl(cfg);
    std::vector<int> done;
    for (uint64_t r = 0; r < 6; ++r) {
        fl.submit_round(participants(r, fl.num_devices(), 4), r,
                        [&](const PsRoundResult &res) {
                            done.push_back(static_cast<int>(res.round));
                        });
    }
    fl.drain();
    ASSERT_NE(fl.checkpoint_writer(), nullptr);
    fl.checkpoint_writer()->flush();
    const auto st = fl.checkpoint_writer()->stats();
    EXPECT_EQ(st.requested, 3u);  // Rounds 1, 3, 5.
    EXPECT_EQ(st.written + st.dropped, st.requested);

    SnapshotData d;
    ASSERT_EQ(store::read_snapshot_file(dir + "/latest.snap", &d),
              SnapshotStatus::Ok);
    EXPECT_EQ(d.meta.round, 5u);
    EXPECT_EQ((done.size()), 6u);
}

// ----------------------------------------------- mmap serving path ----

TEST(MmapServing, ArtifactBackedServiceMatchesStoreBackedPredictions)
{
    // Train a pipelined job with checkpoints; then cold-start a second
    // ModelService from the artifact alone (no ps store) and require
    // identical predictions — the cross-process weight-sharing story
    // in one process.
    const ScratchDir dir("mmap");
    FlSystemConfig cfg = small_job(3, 0);
    cfg.ps.snapshot_dir = dir;
    FlSystem fl(cfg);
    run_rounds(fl, 0, 3);
    fl.checkpoint_writer()->flush();
    ASSERT_EQ(fl.checkpoint_writer()->stats().last_status,
              SnapshotStatus::Ok);

    const std::vector<int> probe = {0, 5, 9, 17, 33, 62};
    const std::vector<int> want =
        fl.serve().classify(fl.serve().acquire(), fl.test_set(), probe);

    SnapshotStatus st;
    auto snap = MappedSnapshot::open(dir + "/latest.snap", &st);
    ASSERT_NE(snap, nullptr) << store::snapshot_status_name(st);

    ModelService cold(Workload::CnnMnist);
    cold.attach_artifact(snap);
    EXPECT_TRUE(cold.artifact_backed());
    EXPECT_FALSE(cold.store_backed());
    const SnapshotHandle h = cold.acquire();
    ASSERT_TRUE(h.valid());
    EXPECT_EQ(h.epoch(), snap->meta().epoch);
    // The handle views the mapped pages directly — zero copies.
    EXPECT_EQ(h.weights().data(), snap->weights());

    EXPECT_EQ(cold.classify(h, fl.test_set(), probe), want);
}

// --------------------------------------------------------- retention --

TEST(CheckpointWriter, RetentionKeepsNewestKPlusPinned)
{
    const ScratchDir dir("retention");
    const std::vector<float> w = pattern_weights(64);
    const uint64_t topo = store::model_topology_hash("CNN-MNIST", w.size());
    const auto weights = std::make_shared<const std::vector<float>>(w);

    store::RetentionPolicy pol;
    pol.keep_last = 2;
    pol.pinned = {1};
    CheckpointWriter wr(dir, topo, 1, pol);
    for (uint64_t r = 0; r < 6; ++r) {
        wr.request(r, r + 1, weights);
        wr.flush();  // Serialize so no checkpoint is dropped.
    }

    const auto st = wr.stats();
    EXPECT_EQ(st.written, 6u);
    EXPECT_EQ(st.deleted, 3u);  // Rounds 0, 2, 3.
    // Pins survive on top of the newest-K window, not inside it.
    for (uint64_t r : {uint64_t{1}, uint64_t{4}, uint64_t{5}})
        EXPECT_TRUE(std::filesystem::exists(wr.artifact_path(r)))
            << "round " << r;
    for (uint64_t r : {uint64_t{0}, uint64_t{2}, uint64_t{3}})
        EXPECT_FALSE(std::filesystem::exists(wr.artifact_path(r)))
            << "round " << r;
    // Deletions never invalidate latest.snap (hard link to newest).
    SnapshotData d;
    ASSERT_EQ(store::read_snapshot_file(wr.latest_path(), &d, topo),
              SnapshotStatus::Ok);
    EXPECT_EQ(d.meta.round, 5u);
}

TEST(CheckpointWriter, RetentionAdoptsArtifactsFromAPreviousRun)
{
    const ScratchDir dir("retention_adopt");
    const std::vector<float> w = pattern_weights(64);
    const uint64_t topo = store::model_topology_hash("CNN-MNIST", w.size());
    const auto weights = std::make_shared<const std::vector<float>>(w);
    {
        CheckpointWriter wr(dir, topo, 1);  // Unbounded first run.
        for (uint64_t r = 0; r < 5; ++r) {
            wr.request(r, r + 1, weights);
            wr.flush();
        }
        EXPECT_EQ(wr.stats().deleted, 0u);
    }
    // A new writer applies retention to the inherited artifacts at
    // construction, before any request arrives.
    store::RetentionPolicy pol;
    pol.keep_last = 2;
    CheckpointWriter wr(dir, topo, 1, pol);
    EXPECT_EQ(wr.stats().deleted, 3u);  // Rounds 0, 1, 2.
    EXPECT_TRUE(std::filesystem::exists(wr.artifact_path(3)));
    EXPECT_TRUE(std::filesystem::exists(wr.artifact_path(4)));
    EXPECT_FALSE(std::filesystem::exists(wr.artifact_path(0)));
    SnapshotData d;
    ASSERT_EQ(store::read_snapshot_file(wr.latest_path(), &d, topo),
              SnapshotStatus::Ok);
    EXPECT_EQ(d.meta.round, 4u);
}

// ---------------------------------------------------- model registry --

using store::ModelRef;
using store::ModelRegistry;
using store::RegistryModel;
using store::RegistryStatus;

TEST(Registry, ParseModelRefTypedErrors)
{
    ModelRef ref;
    ASSERT_EQ(store::parse_model_ref("mnist-small@7", &ref),
              RegistryStatus::Ok);
    EXPECT_EQ(ref.name, "mnist-small");
    EXPECT_EQ(ref.version, 7u);
    ASSERT_EQ(store::parse_model_ref("m", &ref), RegistryStatus::Ok);
    EXPECT_EQ(ref.version, 0u);  // 0 = newest.

    for (const char *bad : {"", "@3", "m@", "m@x", "bad/name", "a b"})
        EXPECT_EQ(store::parse_model_ref(bad, &ref), RegistryStatus::BadName)
            << "'" << bad << "'";
}

TEST(Registry, PublishScanResolvePinRoundTrip)
{
    const ScratchDir dir("registry");
    ModelRegistry reg(dir);
    std::string mdir;
    ASSERT_EQ(reg.publish_dir("mnist-small", "CNN-MNIST", &mdir),
              RegistryStatus::Ok);

    // Artifacts land through the ordinary checkpoint writer; the round
    // is the registry version.
    const std::vector<float> w = pattern_weights(64);
    const uint64_t topo = store::model_topology_hash("CNN-MNIST", w.size());
    {
        CheckpointWriter wr(mdir, topo, 1);
        const auto weights = std::make_shared<const std::vector<float>>(w);
        wr.request(3, 4, weights);
        wr.flush();
        wr.request(7, 8, weights);
        wr.flush();
    }

    std::vector<RegistryModel> models;
    ASSERT_EQ(reg.scan(&models), RegistryStatus::Ok);
    ASSERT_EQ(models.size(), 1u);
    EXPECT_EQ(models[0].name, "mnist-small");
    EXPECT_EQ(models[0].workload, "CNN-MNIST");
    EXPECT_EQ(models[0].versions, (std::vector<uint64_t>{3, 7}));
    EXPECT_EQ(models[0].newest(), 7u);

    // Resolution: @0 picks the newest; explicit versions name their file.
    std::string path;
    uint64_t ver = 0;
    ASSERT_EQ(reg.resolve({"mnist-small", 0}, &path, &ver),
              RegistryStatus::Ok);
    EXPECT_EQ(ver, 7u);
    ASSERT_EQ(reg.resolve({"mnist-small", 3}, &path), RegistryStatus::Ok);
    EXPECT_NE(path.find("model-r3.snap"), std::string::npos);
    EXPECT_EQ(reg.resolve({"mnist-small", 4}, &path),
              RegistryStatus::UnknownVersion);

    RegistryModel m;
    EXPECT_EQ(reg.lookup("nope", &m), RegistryStatus::UnknownModel);
    EXPECT_EQ(reg.resolve({"nope", 0}, &path), RegistryStatus::UnknownModel);

    // open() = resolve + mmap + full validation.
    std::shared_ptr<const MappedSnapshot> snap;
    ASSERT_EQ(reg.open({"mnist-small", 0}, &snap, &ver), RegistryStatus::Ok);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(ver, 7u);
    EXPECT_EQ(snap->meta().round, 7u);

    // Pins round-trip through the manifest; pin() is idempotent.
    ASSERT_EQ(reg.pin("mnist-small", 3), RegistryStatus::Ok);
    ASSERT_EQ(reg.pin("mnist-small", 3), RegistryStatus::Ok);
    EXPECT_EQ(reg.pin("mnist-small", 99), RegistryStatus::UnknownVersion);
    ASSERT_EQ(reg.lookup("mnist-small", &m), RegistryStatus::Ok);
    EXPECT_EQ(m.pinned, (std::vector<uint64_t>{3}));

    // A name can never silently switch architectures.
    EXPECT_EQ(reg.publish_dir("mnist-small", "LSTM-Shakespeare", &mdir),
              RegistryStatus::BadManifest);

    EXPECT_EQ(reg.publish_dir("bad/name", "CNN-MNIST", &mdir),
              RegistryStatus::BadName);
}

TEST(Registry, CorruptManifestAndArtifactAreTypedNeverThrown)
{
    const ScratchDir dir("registry_corrupt");
    ModelRegistry reg(dir);
    std::string mdir;
    ASSERT_EQ(reg.publish_dir("m", "CNN-MNIST", &mdir), RegistryStatus::Ok);
    const std::vector<float> w = pattern_weights(64);
    const uint64_t topo = store::model_topology_hash("CNN-MNIST", w.size());
    {
        CheckpointWriter wr(mdir, topo, 1);
        wr.request(1, 2, std::make_shared<const std::vector<float>>(w));
        wr.flush();
    }

    // Truncated artifact: open() surfaces the snapshot-level cause.
    std::filesystem::resize_file(mdir + "/model-r1.snap", 16);
    std::shared_ptr<const MappedSnapshot> snap;
    SnapshotStatus detail = SnapshotStatus::Ok;
    EXPECT_EQ(reg.open({"m", 1}, &snap, nullptr, &detail),
              RegistryStatus::BadArtifact);
    EXPECT_NE(detail, SnapshotStatus::Ok);

    // Corrupt manifest: direct lookups fail typed...
    {
        FILE *f = std::fopen(reg.manifest_path("m").c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("not a manifest\n", f);
        std::fclose(f);
    }
    RegistryModel m;
    EXPECT_EQ(reg.lookup("m", &m), RegistryStatus::BadManifest);
    // ...and scan skips the damaged model instead of failing the fleet.
    std::vector<RegistryModel> models;
    ASSERT_EQ(reg.scan(&models), RegistryStatus::Ok);
    EXPECT_TRUE(models.empty());
}

// ------------------------------------------- registry serving round trip

TEST(RegistryServing, GatewayColdStartsBitExactFromRegistryAlone)
{
    // The acceptance round trip: train two models into one registry,
    // then a fresh process (here: a fresh ServingGateway that sees only
    // the snapshot directory) serves bit-identical predictions for
    // every registered name@version via mmap.
    const ScratchDir dir("registry_gateway");
    const Dataset test = small_test_set(Workload::CnnMnist, 64);
    const std::vector<int> probe = {0, 5, 11, 23};

    const std::vector<std::string> names = {"model-a", "model-b"};
    std::vector<std::vector<int>> want_live;
    for (int i = 0; i < 2; ++i) {
        FlSystemConfig cfg = small_job(1, -1);
        cfg.seed = 100 + static_cast<uint64_t>(i);
        cfg.serve.registry_dir = dir;
        cfg.serve.model_name = names[i];
        FlSystem fl(cfg);
        run_rounds(fl, 0, 2);
        ASSERT_NE(fl.checkpoint_writer(), nullptr);
        fl.checkpoint_writer()->flush();
        ASSERT_EQ(fl.checkpoint_writer()->stats().last_status,
                  SnapshotStatus::Ok);
        // Sync runtime: the service sees weights on publish, not via a
        // ps store — push the final state the last artifact captured.
        fl.serve().publish(fl.server().global_weights());
        want_live.push_back(
            fl.serve().classify(fl.serve().acquire(), test, probe));
    }

    // Cold start: only the directory, no training stack.
    ServeConfig base;
    base.registry_dir = dir;
    base.workers = 2;
    ServingGateway gw(base);

    // Typed failures on the load path (before start, like any setup).
    EXPECT_EQ(gw.load_model("nope"), RegistryStatus::UnknownModel);
    EXPECT_EQ(gw.load_model("model-a@99"), RegistryStatus::UnknownVersion);
    EXPECT_EQ(gw.load_model("bad/name"), RegistryStatus::BadName);

    std::vector<std::pair<std::string, RegistryStatus>> failed;
    ASSERT_EQ(gw.load_registry(&failed), RegistryStatus::Ok);
    EXPECT_TRUE(failed.empty());
    ASSERT_EQ(gw.models().size(), 2u);

    // Also register every explicit name@version present on disk, with
    // an independent mmap-backed reference prediction for each.
    ModelRegistry reg(dir);
    std::vector<RegistryModel> models;
    ASSERT_EQ(reg.scan(&models), RegistryStatus::Ok);
    ASSERT_EQ(models.size(), 2u);
    struct VersionedKey
    {
        std::string key;
        std::vector<int> want;
    };
    std::vector<VersionedKey> keys;
    for (const RegistryModel &m : models) {
        ASSERT_FALSE(m.versions.empty());
        for (uint64_t v : m.versions) {
            const std::string key = m.name + "@" + std::to_string(v);
            ASSERT_EQ(gw.load_model(key), RegistryStatus::Ok);
            // "@0" is the newest-version alias, so a round-0 artifact
            // resolves to the newest round under an explicit "@0" key.
            EXPECT_EQ(gw.version(key), v == 0 ? m.newest() : v);
            std::shared_ptr<const MappedSnapshot> snap;
            ASSERT_EQ(reg.open({m.name, v}, &snap), RegistryStatus::Ok);
            Workload wl;
            ASSERT_TRUE(workload_from_name(m.workload, &wl));
            ModelService ref_ms(wl);
            ref_ms.attach_artifact(snap);
            keys.push_back(
                {key, ref_ms.classify(ref_ms.acquire(), test, probe)});
        }
    }

    gw.start();
    // Newest-version aliases match the live training-side predictions.
    for (int i = 0; i < 2; ++i) {
        const InferenceReply r = gw.query(names[i], test.batch_x(probe),
                                          true);
        ASSERT_TRUE(r.ok()) << reply_status_name(r.status);
        EXPECT_EQ(r.classes, want_live[i]) << names[i];
    }
    // Every explicit name@version matches its mmap-backed reference.
    for (const VersionedKey &k : keys) {
        const InferenceReply r = gw.query(k.key, test.batch_x(probe), true);
        ASSERT_TRUE(r.ok()) << k.key;
        EXPECT_EQ(r.classes, k.want) << k.key;
    }
    // Unknown keys complete immediately as BadRequest, not a hang.
    EXPECT_EQ(gw.query("missing", test.batch_x(probe)).status,
              ReplyStatus::BadRequest);
    gw.stop_serving();
}

TEST(MmapServing, AttachArtifactRejectsWrongModel)
{
    const ScratchDir dir("mmap_wrong");
    const std::vector<float> w = pattern_weights(128);
    SnapshotMeta meta;
    meta.dim = w.size();
    meta.shard_count = 1;
    meta.topology_hash =
        store::model_topology_hash("CNN-MNIST", w.size());
    ASSERT_EQ(store::write_snapshot_file(dir + "/tiny.snap", meta,
                                         store::even_shard_ranges(128, 1),
                                         w.data()),
              SnapshotStatus::Ok);
    auto snap = MappedSnapshot::open(dir + "/tiny.snap");
    ASSERT_NE(snap, nullptr);
    ModelService ms(Workload::CnnMnist);
    EXPECT_THROW(ms.attach_artifact(snap), std::invalid_argument);
}

} // namespace
} // namespace autofl
