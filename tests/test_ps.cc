/**
 * @file
 * Parameter-server runtime tests: ShardedStore shard math and
 * versioning, PsExecutor scheduling, and the aggregation-equivalence
 * guarantees — SemiAsync with staleness bound 0 reproduces synchronous
 * FedAvg bit-for-bit, and results never depend on thread count.
 */
#include <atomic>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "fl/system.h"
#include "ps/executor.h"
#include "ps/ps_server.h"
#include "ps/sharded_store.h"

namespace autofl {
namespace {

// ------------------------------------------------------- ShardedStore --

TEST(ShardedStore, PartitionCoversEveryIndexExactlyOnce)
{
    ShardedStore store(std::vector<float>(103, 0.0f), 8);
    ASSERT_EQ(store.num_shards(), 8);
    ASSERT_EQ(store.dim(), 103u);

    size_t covered = 0;
    for (int s = 0; s < store.num_shards(); ++s) {
        EXPECT_EQ(store.shard_begin(s), covered) << "gap before shard " << s;
        EXPECT_GT(store.shard_end(s), store.shard_begin(s));
        covered = store.shard_end(s);
    }
    EXPECT_EQ(covered, store.dim());
}

TEST(ShardedStore, ShardSizesDifferByAtMostOne)
{
    ShardedStore store(std::vector<float>(103, 0.0f), 8);
    size_t min_size = store.dim(), max_size = 0;
    for (int s = 0; s < store.num_shards(); ++s) {
        const size_t size = store.shard_end(s) - store.shard_begin(s);
        min_size = std::min(min_size, size);
        max_size = std::max(max_size, size);
    }
    EXPECT_LE(max_size - min_size, 1u);
}

TEST(ShardedStore, ShardOfInvertsTheRanges)
{
    ShardedStore store(std::vector<float>(101, 0.0f), 7);
    for (size_t i = 0; i < store.dim(); ++i) {
        const int s = store.shard_of(i);
        EXPECT_GE(i, store.shard_begin(s));
        EXPECT_LT(i, store.shard_end(s));
    }
}

TEST(ShardedStore, ClampsShardCountToDimension)
{
    ShardedStore tiny(std::vector<float>(3, 0.0f), 16);
    EXPECT_EQ(tiny.num_shards(), 3);
    ShardedStore one(std::vector<float>(5, 0.0f), 0);
    EXPECT_EQ(one.num_shards(), 1);
}

TEST(ShardedStore, ReadReturnsWrittenData)
{
    std::vector<float> init(37);
    for (size_t i = 0; i < init.size(); ++i)
        init[i] = static_cast<float>(i) * 0.25f;
    ShardedStore store(init, 4);
    EXPECT_EQ(store.read(), init);

    std::vector<float> next(init.size(), -1.5f);
    store.write(next);
    EXPECT_EQ(store.read(), next);
}

TEST(ShardedStore, VersionsCountWritesPerShard)
{
    ShardedStore store(std::vector<float>(32, 0.0f), 4);
    for (uint64_t v : store.versions())
        EXPECT_EQ(v, 0u);

    store.write(std::vector<float>(32, 1.0f));
    for (uint64_t v : store.versions())
        EXPECT_EQ(v, 1u);

    store.apply_delta(std::vector<float>(32, 0.5f), 2.0);
    for (int s = 0; s < store.num_shards(); ++s)
        EXPECT_EQ(store.shard_version(s), 2u);
    for (float w : store.read())
        EXPECT_FLOAT_EQ(w, 2.0f);
}

// --------------------------------------------------------- PsExecutor --

TEST(PsExecutor, RunsEveryJobOnce)
{
    PsExecutor exec(4);
    EXPECT_EQ(exec.threads(), 4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        exec.submit([&count](int) { ++count; });
    exec.wait_idle();
    EXPECT_EQ(count.load(), 100);
    EXPECT_EQ(exec.completed(), 100u);
}

TEST(PsExecutor, WorkerIndicesStayInRange)
{
    PsExecutor exec(3);
    std::atomic<int> bad{0};
    for (int i = 0; i < 60; ++i)
        exec.submit([&bad](int worker) {
            if (worker < 0 || worker >= 3)
                ++bad;
        });
    exec.wait_idle();
    EXPECT_EQ(bad.load(), 0);
}

TEST(PsExecutor, WaitIdleOnEmptyPoolReturns)
{
    PsExecutor exec(2);
    exec.wait_idle();  // Must not hang.
    EXPECT_EQ(exec.completed(), 0u);
}

// ------------------------------------------------- runtime equivalence --

FlSystemConfig
ps_system(SyncMode mode, int staleness_bound, int threads,
          Algorithm alg = Algorithm::FedAvg)
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, 6};
    cfg.algorithm = alg;
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 240;
    cfg.data.test_samples = 80;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = 12;
    cfg.seed = 23;
    cfg.threads = threads;
    cfg.ps.mode = mode;
    cfg.ps.staleness_bound = staleness_bound;
    cfg.ps.shards = 5;
    return cfg;
}

const std::vector<int> kRoundIds = {0, 3, 5, 7, 9, 11};

TEST(PsRuntime, SemiAsyncZeroBoundMatchesSyncBitForBit)
{
    FlSystem sync(ps_system(SyncMode::Sync, 0, 4));
    FlSystem semi(ps_system(SyncMode::SemiAsync, 0, 4));

    for (uint64_t round = 0; round < 3; ++round) {
        const PsRoundStats sync_stats = sync.run_round(kRoundIds, round);
        const PsRoundStats semi_stats = semi.run_round(kRoundIds, round);
        EXPECT_EQ(sync_stats.applied, semi_stats.applied);
        EXPECT_EQ(semi_stats.evicted, 0);
        EXPECT_EQ(semi_stats.commits, 1);
        EXPECT_EQ(semi_stats.max_staleness, 0);

        const auto &a = sync.server().global_weights();
        const auto &b = semi.server().global_weights();
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]) << "round " << round << " index " << i;
    }
}

TEST(PsRuntime, SemiAsyncZeroBoundMatchesSyncFedNova)
{
    FlSystem sync(ps_system(SyncMode::Sync, 0, 4, Algorithm::FedNova));
    FlSystem semi(ps_system(SyncMode::SemiAsync, 0, 4, Algorithm::FedNova));

    for (uint64_t round = 0; round < 2; ++round) {
        sync.run_round(kRoundIds, round);
        semi.run_round(kRoundIds, round);
        const auto &a = sync.server().global_weights();
        const auto &b = semi.server().global_weights();
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]) << "round " << round << " index " << i;
    }
}

TEST(PsRuntime, WeightsIndependentOfThreadCount)
{
    // Serial vs parallel, for both the synchronous path and the ps
    // runtime at S=0: the client seed derives from (seed, device,
    // round), never from the worker thread.
    FlSystem sync1(ps_system(SyncMode::Sync, 0, 1));
    FlSystem sync8(ps_system(SyncMode::Sync, 0, 8));
    FlSystem semi1(ps_system(SyncMode::SemiAsync, 0, 1));
    FlSystem semi4(ps_system(SyncMode::SemiAsync, 0, 4));

    for (uint64_t round = 0; round < 2; ++round) {
        sync1.run_round(kRoundIds, round);
        sync8.run_round(kRoundIds, round);
        semi1.run_round(kRoundIds, round);
        semi4.run_round(kRoundIds, round);
    }
    const auto &a = sync1.server().global_weights();
    EXPECT_EQ(a, sync8.server().global_weights());
    EXPECT_EQ(a, semi1.server().global_weights());
    EXPECT_EQ(a, semi4.server().global_weights());
}

TEST(PsRuntime, SemiAsyncAccountsForEveryPush)
{
    FlSystem fl(ps_system(SyncMode::SemiAsync, 1, 4));
    for (uint64_t round = 0; round < 3; ++round) {
        const PsRoundStats st = fl.run_round(kRoundIds, round);
        EXPECT_EQ(st.pushed, static_cast<int>(kRoundIds.size()));
        EXPECT_EQ(st.applied + st.evicted, st.pushed);
        EXPECT_GE(st.commits, 1);
        EXPECT_LE(st.max_staleness, 1);
    }
    for (float w : fl.server().global_weights())
        ASSERT_TRUE(std::isfinite(w));
}

TEST(PsRuntime, AsyncModeCommitsPerUpdateAndStaysFinite)
{
    FlSystem fl(ps_system(SyncMode::Async, 0, 4));
    ASSERT_NE(fl.ps(), nullptr);
    const PsRoundStats st = fl.run_round(kRoundIds, 0);
    EXPECT_EQ(st.pushed, static_cast<int>(kRoundIds.size()));
    EXPECT_EQ(st.evicted, 0);  // Async never evicts.
    EXPECT_EQ(st.commits, st.pushed);
    EXPECT_EQ(st.applied, st.pushed);
    EXPECT_EQ(fl.ps()->aggregator().clock(),
              static_cast<uint64_t>(st.commits));
    for (float w : fl.server().global_weights())
        ASSERT_TRUE(std::isfinite(w));
}

TEST(PsRuntime, FedlFallsBackToSynchronousRuntime)
{
    FlSystem fl(ps_system(SyncMode::SemiAsync, 0, 2, Algorithm::Fedl));
    EXPECT_EQ(fl.ps(), nullptr);
    const PsRoundStats st = fl.run_round(kRoundIds, 0);
    EXPECT_EQ(st.applied, static_cast<int>(kRoundIds.size()));
}

TEST(PsRuntime, StoreVersionsAdvanceWithCommits)
{
    FlSystem fl(ps_system(SyncMode::SemiAsync, 0, 2));
    ASSERT_NE(fl.ps(), nullptr);
    fl.run_round(kRoundIds, 0);
    // One commit per round at S=0: every shard took exactly one write.
    for (int s = 0; s < fl.ps()->store().num_shards(); ++s)
        EXPECT_EQ(fl.ps()->store().shard_version(s), 1u);
}

} // namespace
} // namespace autofl
