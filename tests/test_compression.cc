/**
 * @file
 * Push-path compression tests (src/ps/compression.*, the codec kernel
 * family, and the cluster PushDelta path): per-mode round-trip
 * properties (fp16 within 2^-11 relative, Int8 within half a scale
 * step, TopK exact index recovery), scalar-vs-SIMD bit parity of every
 * codec kernel, error feedback delivering a constant delta in the
 * limit, config validation, typed rejection of malformed encodings,
 * and the headline runtime guarantee: a loopback cluster pushing Int8
 * deltas reproduces the in-process compressed runtime bit for bit.
 */
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "fl/fl_cluster.h"
#include "fl/system.h"
#include "kernels/kernels.h"
#include "ps/compression.h"
#include "ps/ps_server.h"
#include "util/rng.h"

namespace autofl {
namespace {

using kernels::KernelArch;

/** Restores the globally selected kernel arch on scope exit. */
struct ArchGuard
{
    KernelArch saved = kernels::current_kernel_arch();
    ~ArchGuard() { kernels::set_kernel_arch(saved); }
};

bool
simd_available()
{
    return kernels::best_kernel_arch() != KernelArch::Scalar;
}

std::vector<float>
random_delta(size_t n, uint64_t seed, float span = 0.5f)
{
    Rng rng(seed);
    std::vector<float> x(n);
    for (auto &v : x)
        v = rng.uniform(-span, span);
    return x;
}

CompressionConfig
config_for(Compression mode)
{
    CompressionConfig cfg;
    cfg.mode = mode;
    return cfg;
}

// ------------------------------------------------------------- names --

TEST(Compression, NamesRoundTrip)
{
    for (Compression c : {Compression::None, Compression::Fp16,
                          Compression::Int8, Compression::TopK}) {
        Compression parsed = Compression::None;
        EXPECT_TRUE(parse_compression(compression_name(c), &parsed));
        EXPECT_EQ(parsed, c);
    }
    Compression parsed = Compression::None;
    EXPECT_FALSE(parse_compression("gzip", &parsed));
}

// -------------------------------------------------------------- fp16 --

TEST(Compression, Fp16RoundTripWithinHalfUlp)
{
    // binary16 has a 10-bit significand: round-to-nearest costs at most
    // 2^-11 relative error on any normal value.
    const std::vector<float> delta = random_delta(4097, 11, 8.0f);
    EncodedDelta e = encode_delta(config_for(Compression::Fp16), delta);
    EXPECT_EQ(e.payload.size(), 2 * delta.size());
    std::vector<float> out;
    ASSERT_EQ(decode_delta(e, &out), CodecStatus::Ok);
    ASSERT_EQ(out.size(), delta.size());
    for (size_t i = 0; i < delta.size(); ++i) {
        EXPECT_LE(std::fabs(out[i] - delta[i]),
                  std::fabs(delta[i]) * 0x1p-11f)
            << "index " << i << " value " << delta[i];
    }
}

TEST(Compression, Fp16ExhaustiveHalfRoundTrip)
{
    // Every non-NaN binary16 pattern must survive decode -> encode
    // bit-exactly (widening is exact; re-rounding an exactly
    // representable value is the identity). NaNs are excluded: encode
    // quiets signaling NaNs, by design.
    for (uint32_t h = 0; h <= 0xffffu; ++h) {
        const uint16_t in = static_cast<uint16_t>(h);
        if ((in & 0x7c00u) == 0x7c00u && (in & 0x03ffu) != 0)
            continue;  // NaN.
        float f = 0.0f;
        kernels::fp16_decode(1, &in, &f);
        uint16_t back = 0;
        kernels::fp16_encode(1, &f, &back);
        ASSERT_EQ(back, in) << "half pattern 0x" << std::hex << h;
    }
}

TEST(Compression, Fp16EncodesOverflowToInfinityAndKeepsSubnormals)
{
    const float cases[] = {65520.0f,   // Halfway above max half: -> inf.
                           -65520.0f, 65504.0f, 1e-7f, -1e-7f, 0.0f,
                           -0.0f, 5.960464478e-8f};  // Smallest subnormal.
    uint16_t h[8];
    kernels::fp16_encode(8, cases, h);
    EXPECT_EQ(h[0], 0x7c00u);
    EXPECT_EQ(h[1], 0xfc00u);
    EXPECT_EQ(h[2], 0x7bffu);  // Max finite half.
    EXPECT_EQ(h[6] & 0x8000u, 0x8000u);  // -0 keeps its sign.
    float back[8];
    kernels::fp16_decode(8, h, back);
    EXPECT_EQ(back[2], 65504.0f);
    EXPECT_GT(back[3], 0.0f);  // 1e-7 is a half subnormal, not zero.
    EXPECT_EQ(back[7], 5.960464478e-8f);
}

// -------------------------------------------------------------- int8 --

TEST(Compression, Int8ErrorWithinHalfScaleStep)
{
    CompressionConfig cfg = config_for(Compression::Int8);
    cfg.quant_range = 64;
    const std::vector<float> delta = random_delta(1000, 22);
    EncodedDelta e = encode_delta(cfg, delta);
    EXPECT_EQ(e.payload.size(), delta.size());
    ASSERT_EQ(e.scales.size(), (delta.size() + 63) / 64);
    std::vector<float> out;
    ASSERT_EQ(decode_delta(e, &out), CodecStatus::Ok);
    for (size_t i = 0; i < delta.size(); ++i) {
        const float scale = e.scales[i / 64] / 127.0f;
        EXPECT_LE(std::fabs(out[i] - delta[i]),
                  0.5f * scale * (1.0f + 1e-5f))
            << "index " << i;
    }
}

TEST(Compression, Int8DegenerateRangeDecodesToZeros)
{
    // An all-zero range has absmax 0; it must encode to a zero scale
    // and decode to exact zeros, never a divide-by-zero NaN.
    CompressionConfig cfg = config_for(Compression::Int8);
    cfg.quant_range = 8;
    std::vector<float> delta(16, 0.0f);
    delta[12] = 3.0f;  // Second range is live, first is degenerate.
    EncodedDelta e = encode_delta(cfg, delta);
    ASSERT_EQ(e.scales.size(), 2u);
    EXPECT_EQ(e.scales[0], 0.0f);
    std::vector<float> out;
    ASSERT_EQ(decode_delta(e, &out), CodecStatus::Ok);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], 0.0f);
    EXPECT_NEAR(out[12], 3.0f, 3.0f / 127.0f);
}

// -------------------------------------------------------------- topk --

TEST(Compression, TopKRecoversExactIndices)
{
    CompressionConfig cfg = config_for(Compression::TopK);
    cfg.topk_fraction = 0.01;  // k = 10 of n = 1000.
    std::vector<float> delta(1000, 0.001f);
    std::vector<size_t> planted = {3, 99, 100, 255, 256, 500, 707,
                                   801, 950, 999};
    for (size_t i = 0; i < planted.size(); ++i)
        delta[planted[i]] = (i % 2 ? -1.0f : 1.0f) * (2.0f + (float)i);
    EncodedDelta e = encode_delta(cfg, delta);
    EXPECT_EQ(e.k, 10u);
    std::vector<float> out;
    ASSERT_EQ(decode_delta(e, &out), CodecStatus::Ok);
    for (size_t i = 0; i < out.size(); ++i) {
        const bool kept = std::find(planted.begin(), planted.end(), i) !=
            planted.end();
        if (kept)
            EXPECT_NEAR(out[i], delta[i], std::fabs(delta[i]) * 0x1p-11f)
                << "index " << i;
        else
            EXPECT_EQ(out[i], 0.0f) << "index " << i;
    }
}

TEST(Compression, TopKTieBreaksTowardLowerIndex)
{
    std::vector<float> x(8, 0.0f);
    x[2] = 1.0f;
    x[5] = -1.0f;  // Same magnitude as x[2].
    x[6] = 1.0f;
    int32_t idx[2] = {-1, -1};
    kernels::topk_select(x.size(), x.data(), 2, idx);
    EXPECT_EQ(idx[0], 2);
    EXPECT_EQ(idx[1], 5);
}

TEST(Compression, TopKSpansMultipleRanges)
{
    // n > 65536 exercises the ranged u16 payload layout: local indices
    // must be rebased per range and reassembled globally.
    CompressionConfig cfg = config_for(Compression::TopK);
    cfg.topk_fraction = 0.001;
    const size_t n = 70000;
    std::vector<float> delta(n, 0.0f);
    std::vector<size_t> planted;
    for (size_t i = 0; i < 70; ++i)
        planted.push_back(i * 999 + 7);  // Spread across both ranges.
    for (size_t p : planted)
        delta[p] = 4.0f;
    EncodedDelta e = encode_delta(cfg, delta);
    EXPECT_EQ(e.k, 70u);
    // 2 ranges * 4-byte count + 70 * (u16 index + binary16 value).
    EXPECT_EQ(e.payload.size(), 2 * 4 + 70 * 4);
    std::vector<float> out;
    ASSERT_EQ(decode_delta(e, &out), CodecStatus::Ok);
    size_t nonzero = 0;
    for (size_t i = 0; i < n; ++i) {
        if (out[i] != 0.0f) {
            ++nonzero;
            EXPECT_EQ(out[i], 4.0f) << "index " << i;
            EXPECT_TRUE(std::find(planted.begin(), planted.end(), i) !=
                        planted.end())
                << "index " << i;
        }
    }
    EXPECT_EQ(nonzero, planted.size());
}

// -------------------------------------- scalar vs SIMD bit parity --

TEST(Compression, CodecKernelsBitIdenticalAcrossArchs)
{
    if (!simd_available())
        GTEST_SKIP() << "no SIMD variant on this host";
    ArchGuard guard;
    // Values spanning normals, half subnormals and half overflow; the
    // codec family contract (kernels.h) promises bit-identical encode
    // and decode on every variant.
    std::vector<float> x = random_delta(1003, 7, 70000.0f);
    for (size_t i = 0; i < x.size(); i += 17)
        x[i] *= 1e-6f;

    for (Compression mode : {Compression::Fp16, Compression::Int8,
                             Compression::TopK}) {
        CompressionConfig cfg = config_for(mode);
        cfg.quant_range = 100;
        cfg.topk_fraction = 0.25;
        kernels::set_kernel_arch(KernelArch::Scalar);
        EncodedDelta scalar = encode_delta(cfg, x);
        std::vector<float> scalar_out;
        ASSERT_EQ(decode_delta(scalar, &scalar_out), CodecStatus::Ok);

        kernels::set_kernel_arch(kernels::best_kernel_arch());
        EncodedDelta simd = encode_delta(cfg, x);
        std::vector<float> simd_out;
        ASSERT_EQ(decode_delta(simd, &simd_out), CodecStatus::Ok);

        EXPECT_EQ(scalar.scales, simd.scales) << compression_name(mode);
        EXPECT_EQ(scalar.payload, simd.payload) << compression_name(mode);
        ASSERT_EQ(scalar_out.size(), simd_out.size());
        for (size_t i = 0; i < scalar_out.size(); ++i) {
            ASSERT_EQ(std::memcmp(&scalar_out[i], &simd_out[i], 4), 0)
                << compression_name(mode) << " index " << i;
        }
    }
}

// ---------------------------------------------------- error feedback --

TEST(Compression, ErrorFeedbackDeliversConstantDeltaInTheLimit)
{
    // Whatever one round's quantizer drops, a later round re-sends: for
    // a constant per-round delta d the cumulative decoded mass after R
    // rounds must equal R*d minus a residual bounded by one quantization
    // step — bounded, not growing, so the average error drains to zero.
    CompressionConfig cfg = config_for(Compression::Int8);
    cfg.quant_range = 32;
    const std::vector<float> d = random_delta(64, 5, 0.01f);
    ErrorFeedback ef;
    std::vector<float> delivered(d.size(), 0.0f);
    const int rounds = 50;
    for (int r = 0; r < rounds; ++r) {
        std::vector<float> decoded;
        ef.encode(cfg, /*device=*/0, d, &decoded);
        for (size_t i = 0; i < d.size(); ++i)
            delivered[i] += decoded[i];
    }
    EXPECT_EQ(ef.tracked_devices(), 1u);
    const std::vector<float> residual = ef.residual(0);
    ASSERT_EQ(residual.size(), d.size());
    for (size_t i = 0; i < d.size(); ++i) {
        const float target = static_cast<float>(rounds) * d[i];
        // delivered + residual telescopes back to the full mass.
        EXPECT_NEAR(delivered[i] + residual[i], target,
                    std::fabs(target) * 1e-4f + 1e-6f)
            << "index " << i;
        // And the residual itself is one step, not R steps.
        EXPECT_LE(std::fabs(residual[i]), 0.02f) << "index " << i;
    }
}

TEST(Compression, ErrorFeedbackTopKEventuallyTouchesEveryIndex)
{
    // TopK keeps 25% per round, but error feedback accumulates the
    // dropped 75%: within a few rounds every coordinate of a constant
    // delta must have been delivered at least once.
    CompressionConfig cfg = config_for(Compression::TopK);
    cfg.topk_fraction = 0.25;
    // Distinct magnitudes within a 2x band: a dropped coordinate's
    // accumulated residual overtakes any freshly-reset competitor
    // within a few rounds, so delivery provably rotates.
    std::vector<float> d(40);
    for (size_t i = 0; i < d.size(); ++i)
        d[i] = 0.01f + 0.0002f * static_cast<float>(i);
    ErrorFeedback ef;
    std::vector<bool> touched(d.size(), false);
    for (int r = 0; r < 12; ++r) {
        std::vector<float> decoded;
        ef.encode(cfg, 3, d, &decoded);
        for (size_t i = 0; i < d.size(); ++i)
            if (decoded[i] != 0.0f)
                touched[i] = true;
    }
    for (size_t i = 0; i < touched.size(); ++i)
        EXPECT_TRUE(touched[i]) << "index " << i << " never delivered";
    ef.reset();
    EXPECT_EQ(ef.tracked_devices(), 0u);
}

TEST(Compression, ErrorFeedbackNoneIsAPureMove)
{
    ErrorFeedback ef;
    const std::vector<float> d = {1.0f, -2.0f, 0.5f};
    std::vector<float> decoded;
    EncodedDelta e = ef.encode(config_for(Compression::None), 0, d,
                               &decoded);
    EXPECT_EQ(e.dense, d);
    EXPECT_EQ(decoded, d);
    EXPECT_EQ(ef.tracked_devices(), 0u);  // No residual bookkeeping.
}

// --------------------------------------------------------- validation --

TEST(Compression, ValidationRejectsBadKnobs)
{
    CompressionConfig cfg = config_for(Compression::Int8);
    cfg.quant_range = 0;
    EXPECT_THROW(cfg.validate("test"), std::invalid_argument);
    cfg = config_for(Compression::TopK);
    cfg.topk_fraction = 0.0;
    EXPECT_THROW(cfg.validate("test"), std::invalid_argument);
    cfg.topk_fraction = 1.5;
    EXPECT_THROW(cfg.validate("test"), std::invalid_argument);
    cfg.topk_fraction = 1.0;
    EXPECT_NO_THROW(cfg.validate("test"));
}

TEST(Compression, PsConfigRejectsCompressedSyncAndPipelining)
{
    PsConfig cfg;
    cfg.compression.mode = Compression::Int8;
    cfg.mode = SyncMode::Sync;
    EXPECT_THROW(cfg.validate("test"), std::invalid_argument);
    cfg.mode = SyncMode::SemiAsync;
    cfg.staleness_bound = 0;
    EXPECT_NO_THROW(cfg.validate("test"));
    cfg.pipeline_depth = 2;
    EXPECT_THROW(cfg.validate("test"), std::invalid_argument);
}

// ------------------------------------------------ malformed encodings --

TEST(Compression, DecodeRejectsMalformedEncodingsWithTypedStatus)
{
    std::vector<float> out;
    CompressionConfig int8 = config_for(Compression::Int8);
    int8.quant_range = 16;
    const std::vector<float> delta = random_delta(64, 9);

    EncodedDelta truncated = encode_delta(int8, delta);
    truncated.scales.pop_back();  // Truncated scale table.
    EXPECT_EQ(decode_delta(truncated, &out), CodecStatus::BadLength);

    EncodedDelta nan_scale = encode_delta(int8, delta);
    nan_scale.scales[1] = std::nanf("");
    EXPECT_EQ(decode_delta(nan_scale, &out), CodecStatus::BadScale);

    EncodedDelta neg_scale = encode_delta(int8, delta);
    neg_scale.scales[0] = -1.0f;
    EXPECT_EQ(decode_delta(neg_scale, &out), CodecStatus::BadScale);

    CompressionConfig topk = config_for(Compression::TopK);
    topk.topk_fraction = 0.25;
    EncodedDelta overk = encode_delta(topk, delta);
    overk.k = 65;  // k > n.
    EXPECT_EQ(decode_delta(overk, &out), CodecStatus::BadK);

    EncodedDelta unsorted = encode_delta(topk, delta);
    // Swap the first two u16 local indices: no longer ascending.
    ASSERT_GE(unsorted.payload.size(), 4u + 4u);
    std::swap(unsorted.payload[4], unsorted.payload[6]);
    std::swap(unsorted.payload[5], unsorted.payload[7]);
    EXPECT_EQ(decode_delta(unsorted, &out), CodecStatus::BadIndex);

    EncodedDelta badmode = encode_delta(int8, delta);
    badmode.mode = static_cast<Compression>(77);
    EXPECT_EQ(decode_delta(badmode, &out), CodecStatus::BadMode);

    // A failed decode never touches the output.
    out = {42.0f};
    EXPECT_NE(decode_delta(truncated, &out), CodecStatus::Ok);
    EXPECT_EQ(out, std::vector<float>{42.0f});
}

// --------------------------------------------------- size accounting --

TEST(Compression, AnalyticSizesMatchRealizedEncodings)
{
    const size_t n = 10000;
    const std::vector<float> delta = random_delta(n, 31);
    for (Compression mode : {Compression::None, Compression::Fp16,
                             Compression::Int8, Compression::TopK}) {
        CompressionConfig cfg = config_for(mode);
        EncodedDelta e = encode_delta(cfg, delta);
        EXPECT_EQ(encoded_payload_bytes(e), encoded_delta_bytes(cfg, n))
            << compression_name(mode);
    }
    // And the headline ratios hold: >= 3x for Int8, >= 8x for TopK@10%.
    CompressionConfig int8 = config_for(Compression::Int8);
    CompressionConfig topk = config_for(Compression::TopK);
    const double raw = static_cast<double>(4 * n);
    EXPECT_GE(raw / encoded_delta_bytes(int8, n), 3.0);
    EXPECT_GE(raw / encoded_delta_bytes(topk, n), 8.0);
}

// -------------------------------------------- runtimes, end to end --

FlSystemConfig
compressed_system(const std::string &listen, int workers, Compression mode)
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, 6};
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 240;
    cfg.data.test_samples = 80;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = 12;
    cfg.seed = 23;
    cfg.threads = 4;
    cfg.ps.shards = 5;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.staleness_bound = 0;
    cfg.ps.compression.mode = mode;
    if (!listen.empty()) {
        cfg.ps.net.listen = listen;
        cfg.ps.net.workers = workers;
    }
    return cfg;
}

const std::vector<int> kRoundIds = {0, 3, 5, 7, 9, 11};

TEST(Compression, ClusterInt8MatchesInProcessInt8BitForBit)
{
    // The compressed runtime's parity guarantee: the encoded-delta wire
    // path (worker-side error feedback, PushDelta frames, server-side
    // reconstruction against the cached pull base) must produce the
    // very same bits as the in-process compressed runtime's
    // decode-before-commit — placement and transport cannot leak into
    // the weights, compressed or not.
    FlSystem direct(compressed_system("", 0, Compression::Int8));
    FlSystem clustered(
        compressed_system("loopback", 3, Compression::Int8));

    for (uint64_t round = 0; round < 3; ++round) {
        direct.run_round(kRoundIds, round);
        clustered.run_round(kRoundIds, round);
        const auto &a = direct.server().global_weights();
        const auto &b = clustered.server().global_weights();
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]) << "round " << round << " index " << i;
    }
    ASSERT_NE(clustered.cluster(), nullptr);
    EXPECT_EQ(clustered.cluster()->server().dead_evictions(), 0u);
}

TEST(Compression, CompressedRuntimeStillLearns)
{
    // Sanity across every mode: a few compressed rounds produce a model
    // that is a model (accuracy clears chance), and the in-process push
    // accounting reports the compressed byte cost, not the raw one.
    for (Compression mode : {Compression::Fp16, Compression::TopK}) {
        FlSystem fl(compressed_system("", 0, mode));
        for (uint64_t round = 0; round < 3; ++round)
            fl.run_round(kRoundIds, round);
        EXPECT_GT(fl.evaluate(), 0.1) << compression_name(mode);
        ASSERT_NE(fl.ps(), nullptr);
        const uint64_t dim = fl.server().global_weights().size();
        const uint64_t raw = 3 * kRoundIds.size() * 4 * dim;
        EXPECT_LE(fl.ps()->push_payload_bytes(), raw / 2)
            << compression_name(mode);
        EXPECT_GT(fl.ps()->push_payload_bytes(), 0u);
    }
}

} // namespace
} // namespace autofl
