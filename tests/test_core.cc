/** @file AutoFL core tests: DBSCAN, state encoding, Q-table, reward. */
#include <gtest/gtest.h>

#include "core/autofl.h"
#include "core/cluster.h"
#include "core/dbscan.h"
#include "nn/models.h"

namespace autofl {
namespace {

TEST(Dbscan, FindsTwoSeparatedClusters)
{
    std::vector<std::vector<double>> pts;
    for (int i = 0; i < 10; ++i) {
        pts.push_back({0.0 + i * 0.05});
        pts.push_back({10.0 + i * 0.05});
    }
    auto res = dbscan(pts, {0.2, 3});
    EXPECT_EQ(res.num_clusters, 2);
    // Points within the same group share a label.
    EXPECT_EQ(res.labels[0], res.labels[2]);
    EXPECT_NE(res.labels[0], res.labels[1]);
}

TEST(Dbscan, MarksIsolatedPointsNoise)
{
    std::vector<std::vector<double>> pts;
    for (int i = 0; i < 8; ++i)
        pts.push_back({i * 0.01});
    pts.push_back({100.0});  // isolated
    auto res = dbscan(pts, {0.1, 3});
    EXPECT_EQ(res.labels.back(), -1);
    EXPECT_EQ(res.num_clusters, 1);
}

TEST(Dbscan, TwoDimensionalClusters)
{
    std::vector<std::vector<double>> pts;
    for (int i = 0; i < 12; ++i) {
        const double j = (i % 4) * 0.02;
        pts.push_back({0.0 + j, 0.0 + j});
        pts.push_back({5.0 + j, 5.0 + j});
        pts.push_back({0.0 + j, 5.0 + j});
    }
    auto res = dbscan(pts, {0.3, 4});
    EXPECT_EQ(res.num_clusters, 3);
}

TEST(Dbscan, ThresholdsSplitClusters)
{
    std::vector<double> samples;
    for (int i = 0; i < 20; ++i) {
        samples.push_back(0.0 + i * 0.01);
        samples.push_back(1.0 + i * 0.01);
        samples.push_back(2.0 + i * 0.01);
    }
    auto th = derive_thresholds(samples, {0.1, 4});
    ASSERT_EQ(th.size(), 2u);
    EXPECT_NEAR(th[0], 0.55, 0.1);
    EXPECT_NEAR(th[1], 1.55, 0.1);
    EXPECT_EQ(bucket_of(0.2, th), 0);
    EXPECT_EQ(bucket_of(1.2, th), 1);
    EXPECT_EQ(bucket_of(2.2, th), 2);
}

TEST(Dbscan, SingleClusterYieldsNoThresholds)
{
    std::vector<double> samples(30, 1.0);
    EXPECT_TRUE(derive_thresholds(samples, {0.1, 4}).empty());
}

TEST(State, GlobalEncodingIsInjective)
{
    // Exhaustively check the dense encoding hits each index once.
    std::vector<bool> seen(static_cast<size_t>(kGlobalStates), false);
    for (int c = 0; c < kConvBuckets; ++c)
        for (int f = 0; f < kFcBuckets; ++f)
            for (int r = 0; r < kRcBuckets; ++r)
                for (int b = 0; b < kBatchBuckets; ++b)
                    for (int e = 0; e < kEpochBuckets; ++e)
                        for (int k = 0; k < kKBuckets; ++k)
                            for (int st = 0; st < kStaleBuckets; ++st) {
                                GlobalState s{c, f, r, b, e, k, st};
                                const int idx = encode_global(s);
                                ASSERT_FALSE(
                                    seen[static_cast<size_t>(idx)]);
                                seen[static_cast<size_t>(idx)] = true;
                            }
    for (bool b : seen)
        EXPECT_TRUE(b);
}

TEST(State, LocalEncodingIsInjective)
{
    std::vector<bool> seen(static_cast<size_t>(kLocalStates), false);
    for (int c = 0; c < kCoCpuBuckets; ++c)
        for (int m = 0; m < kCoMemBuckets; ++m)
            for (int n = 0; n < kNetworkBuckets; ++n)
                for (int d = 0; d < kDataBuckets; ++d) {
                    LocalState s{c, m, n, d};
                    const int idx = encode_local(s);
                    ASSERT_FALSE(seen[static_cast<size_t>(idx)]);
                    seen[static_cast<size_t>(idx)] = true;
                }
    for (bool b : seen)
        EXPECT_TRUE(b);
}

TEST(State, Table1GlobalThresholds)
{
    NnProfile p;
    p.conv_layers = 2;
    p.fc_layers = 2;
    p.rc_layers = 0;
    FlGlobalParams params{16, 5, 20};
    GlobalState s = make_global_state(p, params);
    EXPECT_EQ(s.s_conv, 1);  // small
    EXPECT_EQ(s.s_fc, 1);    // small
    EXPECT_EQ(s.s_rc, 0);    // none
    EXPECT_EQ(s.s_b, 1);     // medium (<32)
    EXPECT_EQ(s.s_e, 1);     // medium (<10)
    EXPECT_EQ(s.s_k, 1);     // medium (<50)

    p.conv_layers = 25;
    p.fc_layers = 12;
    p.rc_layers = 11;
    params = {32, 10, 60};
    s = make_global_state(p, params);
    EXPECT_EQ(s.s_conv, 3);  // large (<30)
    EXPECT_EQ(s.s_fc, 2);    // large (>=10)
    EXPECT_EQ(s.s_rc, 3);    // large (>=10)
    EXPECT_EQ(s.s_b, 2);     // large (>=32)
    EXPECT_EQ(s.s_e, 2);     // large (>=10)
    EXPECT_EQ(s.s_k, 2);     // large (>=50)
}

TEST(State, StalenessBucketThresholds)
{
    NnProfile p;
    FlGlobalParams params{16, 5, 20};
    // Default (synchronous runtime) lands in the fresh bucket.
    EXPECT_EQ(make_global_state(p, params).s_stale, 0);
    EXPECT_EQ(make_global_state(p, params, 0.5).s_stale, 1);   // mild
    EXPECT_EQ(make_global_state(p, params, 2.0).s_stale, 2);   // heavy
}

TEST(State, Table1LocalThresholds)
{
    DeviceRoundState quiet{0.0, 0.0, 80.0};
    LocalState s = make_local_state(quiet, 10, 10);
    EXPECT_EQ(s.s_co_cpu, 0);   // none
    EXPECT_EQ(s.s_co_mem, 0);   // none
    EXPECT_EQ(s.s_network, 0);  // regular
    EXPECT_EQ(s.s_data, 2);     // large (=100%)

    DeviceRoundState loaded{0.5, 0.8, 30.0};
    s = make_local_state(loaded, 2, 10);
    EXPECT_EQ(s.s_co_cpu, 2);   // medium (<75%)
    EXPECT_EQ(s.s_co_mem, 3);   // large
    EXPECT_EQ(s.s_network, 1);  // bad (<=40 Mbps)
    EXPECT_EQ(s.s_data, 0);     // small (<25%)
}

TEST(State, WorkloadsMapToDistinctGlobalStates)
{
    FlGlobalParams params{16, 5, 20};
    const int cnn = encode_global(
        make_global_state(model_profile(Workload::CnnMnist), params));
    const int lstm = encode_global(
        make_global_state(model_profile(Workload::LstmShakespeare), params));
    const int mob = encode_global(make_global_state(
        model_profile(Workload::MobileNetImageNet), params));
    EXPECT_NE(cnn, lstm);
    EXPECT_NE(cnn, mob);
    EXPECT_NE(lstm, mob);
}

TEST(Action, EncodeDecodeRoundTrip)
{
    for (int i = 0; i < kNumActions; ++i) {
        const Action a = decode_action(i);
        EXPECT_EQ(encode_action(a), i);
    }
    EXPECT_EQ(encode_action({ExecTarget::Cpu, DvfsLevel::Low}), 0);
    EXPECT_EQ(encode_action({ExecTarget::Gpu, DvfsLevel::High}), 5);
}

TEST(QTable, MaterializesWithSmallRandomInit)
{
    QTable t(Rng(1), 0.01);
    EXPECT_EQ(t.entries(), 0u);
    const double v = t.q(3, 5, 2);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 0.01);
    EXPECT_EQ(t.entries(), 1u);
    // Stable on re-read.
    EXPECT_EQ(t.q(3, 5, 2), v);
}

TEST(QTable, BestActionTracksSetValues)
{
    QTable t(Rng(2), 0.0);
    t.set_q(1, 1, 4, 7.5);
    t.set_q(1, 1, 2, 3.0);
    EXPECT_EQ(t.best_action(1, 1), 4);
    EXPECT_DOUBLE_EQ(t.max_q(1, 1), 7.5);
}

TEST(QTable, UpdateImplementsAlgorithm1)
{
    QTable t(Rng(3), 0.0);
    t.set_q(0, 0, 0, 1.0);
    // Q += gamma * (r + mu * nextQ - Q) with gamma=0.9, mu=0.1.
    t.update(0, 0, 0, /*reward=*/10.0, /*next_q=*/5.0, 0.9, 0.1);
    EXPECT_NEAR(t.q(0, 0, 0), 1.0 + 0.9 * (10.0 + 0.5 - 1.0), 1e-12);
}

TEST(QTable, BytesGrowWithEntries)
{
    QTable t(Rng(4), 0.01);
    const size_t empty = t.bytes();
    t.q(0, 0, 0);
    t.q(1, 1, 0);
    EXPECT_GT(t.bytes(), empty);
}

TEST(Reward, FailureBranchPenalizes)
{
    RewardConfig cfg;
    // No accuracy improvement -> acc - 100.
    EXPECT_DOUBLE_EQ(compute_reward(cfg, 50, 2, 70.0, 70.0), -30.0);
    EXPECT_DOUBLE_EQ(compute_reward(cfg, 50, 2, 60.0, 65.0), -40.0);
}

TEST(Reward, SuccessBranchTradesEnergyForAccuracy)
{
    RewardConfig cfg;
    cfg.alpha = 1.0;
    cfg.beta = 2.0;
    cfg.energy_scale_global_j = 50.0;
    cfg.energy_scale_local_j = 2.0;
    const double r = compute_reward(cfg, 100.0, 4.0, 80.0, 75.0);
    // -100/50 - 4/2 + 80 + 2*5 = -2 - 2 + 80 + 10 = 86.
    EXPECT_NEAR(r, 86.0, 1e-12);
}

TEST(Reward, LowerEnergyIsBetter)
{
    RewardConfig cfg;
    EXPECT_GT(compute_reward(cfg, 10.0, 1.0, 80.0, 79.0),
              compute_reward(cfg, 200.0, 8.0, 80.0, 79.0));
}

TEST(Cluster, KMeansRecoversTiers)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 11);
    auto clusters = cluster_devices(fleet, 3, 42);
    ASSERT_EQ(clusters.assignment.size(), 200u);
    // All devices of one tier share a cluster, and tiers differ.
    const int h = clusters.assignment[0];    // device 0 is high-end
    const int m = clusters.assignment[40];   // device 40 is mid
    const int l = clusters.assignment[150];  // device 150 is low
    EXPECT_NE(h, m);
    EXPECT_NE(m, l);
    EXPECT_NE(h, l);
    for (int d = 0; d < 30; ++d)
        EXPECT_EQ(clusters.assignment[static_cast<size_t>(d)], h);
    for (int d = 30; d < 100; ++d)
        EXPECT_EQ(clusters.assignment[static_cast<size_t>(d)], m);
    for (int d = 100; d < 200; ++d)
        EXPECT_EQ(clusters.assignment[static_cast<size_t>(d)], l);
}

TEST(Cluster, FeaturesNormalized)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 12);
    auto f = device_features(fleet.device(0));
    for (double v : f) {
        EXPECT_GT(v, 0.0);
        EXPECT_LE(v, 1.05);
    }
}

} // namespace
} // namespace autofl
