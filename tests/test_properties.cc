/**
 * @file
 * Property-based tests: invariants that must hold across whole parameter
 * sweeps (monotonicity, conservation, scaling), exercised with
 * parameterized gtest over tiers, targets, DVFS levels and sizes.
 */
#include <gtest/gtest.h>

#include "core/reward.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/system.h"
#include "ps/ps_server.h"
#include "sim/perf.h"
#include "sim/power.h"
#include "sim/round.h"

namespace autofl {
namespace {

// ---------------------------------------------------------------- sim --

struct TierTarget
{
    Tier tier;
    ExecTarget target;
};

class TierTargetTest : public ::testing::TestWithParam<TierTarget>
{
};

TEST_P(TierTargetTest, ComputeTimeMonotoneInWork)
{
    const auto [tier, target] = GetParam();
    const DeviceSpec &spec = spec_for_tier(tier);
    DeviceRoundState quiet;
    quiet.bandwidth_mbps = 80.0;
    double prev = 0.0;
    for (double flops = 1e6; flops <= 1e9; flops *= 4.0) {
        ComputeProfile prof{flops, 0.3, 1e4};
        const double t = compute_time_s(spec, target, 1.0, prof, quiet);
        EXPECT_GT(t, prev) << "flops " << flops;
        prev = t;
    }
}

TEST_P(TierTargetTest, ComputeTimeMonotoneInFrequency)
{
    const auto [tier, target] = GetParam();
    const DeviceSpec &spec = spec_for_tier(tier);
    DeviceRoundState quiet;
    quiet.bandwidth_mbps = 80.0;
    ComputeProfile prof{5e7, 0.3, 1e4};
    double prev = 1e9;
    for (double f : {0.4, 0.55, 0.7, 0.85, 1.0}) {
        const double t = compute_time_s(spec, target, f, prof, quiet);
        EXPECT_LT(t, prev) << "freq " << f;
        prev = t;
    }
}

TEST_P(TierTargetTest, HeatNeverSpeedsUp)
{
    const auto [tier, target] = GetParam();
    const DeviceSpec &spec = spec_for_tier(tier);
    DeviceRoundState quiet;
    quiet.bandwidth_mbps = 80.0;
    ComputeProfile prof{5e7, 0.3, 1e4};
    double prev = 0.0;
    for (double heat : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        const double t =
            compute_time_s(spec, target, 1.0, prof, quiet, heat);
        EXPECT_GE(t, prev) << "heat " << heat;
        prev = t;
    }
}

TEST_P(TierTargetTest, BusyPowerMonotoneInFrequency)
{
    const auto [tier, target] = GetParam();
    const DeviceSpec &spec = spec_for_tier(tier);
    double prev = 0.0;
    for (double f : {0.4, 0.55, 0.7, 0.85, 1.0}) {
        const double p = busy_power_w(spec, target, f);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTierTargets, TierTargetTest,
    ::testing::Values(TierTarget{Tier::High, ExecTarget::Cpu},
                      TierTarget{Tier::High, ExecTarget::Gpu},
                      TierTarget{Tier::Mid, ExecTarget::Cpu},
                      TierTarget{Tier::Mid, ExecTarget::Gpu},
                      TierTarget{Tier::Low, ExecTarget::Cpu},
                      TierTarget{Tier::Low, ExecTarget::Gpu}));

class BatchSizeTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BatchSizeTest, LargerBatchesNeverSlower)
{
    const int batch = GetParam();
    DeviceRoundState quiet;
    quiet.bandwidth_mbps = 80.0;
    for (Tier tier : {Tier::High, Tier::Mid, Tier::Low}) {
        ComputeProfile small{5e7, 0.3, 1e4, batch};
        ComputeProfile big{5e7, 0.3, 1e4, batch * 2};
        EXPECT_GE(compute_time_s(spec_for_tier(tier), ExecTarget::Cpu, 1.0,
                                 small, quiet),
                  compute_time_s(spec_for_tier(tier), ExecTarget::Cpu, 1.0,
                                 big, quiet));
    }
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSizeTest,
                         ::testing::Values(4, 8, 16, 32));

TEST(RoundProperties, EnergyConservationAcrossK)
{
    // Fleet energy always equals participants + idle remainder, for any
    // participant count.
    for (int k : {1, 5, 20, 50}) {
        Fleet fleet(FleetMix{}, VarianceScenario::Combined,
                    static_cast<uint64_t>(k));
        fleet.begin_round();
        std::vector<ParticipantPlan> plans;
        std::vector<ComputeProfile> profiles;
        for (int i = 0; i < k; ++i) {
            plans.push_back({i * (200 / k), ExecTarget::Cpu,
                             DvfsLevel::High});
            profiles.push_back({5e7, 0.25, 25000});
        }
        RoundExec exec = simulate_round(fleet, plans, profiles);
        double psum = 0.0;
        for (const auto &p : exec.participants)
            psum += p.energy_j();
        EXPECT_NEAR(psum, exec.energy_participants_j, 1e-6);
        EXPECT_NEAR(exec.energy_global_j(),
                    exec.energy_participants_j + exec.energy_idle_fleet_j,
                    1e-6);
        EXPECT_EQ(exec.participants.size(), static_cast<size_t>(k));
    }
}

TEST(RoundProperties, MoreParticipantsMoreWork)
{
    double prev_work = 0.0;
    for (int k : {5, 10, 20, 40}) {
        Fleet fleet(FleetMix{}, VarianceScenario::None, 77);
        fleet.begin_round();
        std::vector<ParticipantPlan> plans;
        std::vector<ComputeProfile> profiles;
        for (int i = 0; i < k; ++i) {
            plans.push_back({i, ExecTarget::Cpu, DvfsLevel::High});
            profiles.push_back({5e7, 0.25, 25000});
        }
        RoundExec exec = simulate_round(fleet, plans, profiles, {0.0});
        EXPECT_GT(exec.work_flops, prev_work);
        prev_work = exec.work_flops;
    }
}

TEST(RoundProperties, RepeatedSelectionAccumulatesHeat)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 78);
    std::vector<ParticipantPlan> plans = {
        {0, ExecTarget::Cpu, DvfsLevel::High}};
    std::vector<ComputeProfile> profiles = {{5e7, 0.25, 25000}};
    double prev_comp = 0.0;
    for (int round = 0; round < 4; ++round) {
        fleet.begin_round();
        RoundExec exec = simulate_round(fleet, plans, profiles);
        // Times are non-decreasing as the device heats up round over
        // round (cool-down is slower than the heat added).
        EXPECT_GE(exec.participants[0].comp_s, prev_comp);
        prev_comp = exec.participants[0].comp_s;
    }
    EXPECT_GT(fleet.device(0).heat(), 0.3);
    EXPECT_NEAR(fleet.device(1).heat(), 0.0, 1e-12);
}

// ------------------------------------------------------------- reward --

TEST(RewardProperties, MonotoneInEachArgument)
{
    RewardConfig cfg;
    const double base = compute_reward(cfg, 100, 4, 80, 79, 1.0);
    // Lower global energy -> higher reward.
    EXPECT_GT(compute_reward(cfg, 50, 4, 80, 79, 1.0), base);
    // Lower local energy -> higher reward.
    EXPECT_GT(compute_reward(cfg, 100, 2, 80, 79, 1.0), base);
    // Higher accuracy -> higher reward.
    EXPECT_GT(compute_reward(cfg, 100, 4, 85, 79, 1.0), base);
    // Faster completion -> higher reward.
    EXPECT_GT(compute_reward(cfg, 100, 4, 80, 79, 0.5), base);
    // Data weight scales only the improvement credit.
    EXPECT_GT(compute_reward(cfg, 100, 4, 80, 79, 1.0, 1.25), base);
}

TEST(RewardProperties, FailureBranchIgnoresEnergy)
{
    RewardConfig cfg;
    EXPECT_EQ(compute_reward(cfg, 10, 1, 70, 75),
              compute_reward(cfg, 1000, 50, 70, 75));
}

// --------------------------------------------------------------- data --

class PartitionSweepTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PartitionSweepTest, QuotaInvariantAcrossFleetSizes)
{
    const int devices = GetParam();
    SyntheticConfig scfg;
    scfg.train_samples = 1200;
    scfg.test_samples = 100;
    auto split = make_synthetic_mnist(scfg);
    PartitionConfig pcfg;
    pcfg.num_devices = devices;
    pcfg.distribution = DataDistribution::NonIid50;
    auto part = partition_dataset(split.train, pcfg);
    ASSERT_EQ(part.shards.size(), static_cast<size_t>(devices));
    const int quota = 1200 / devices;
    for (const auto &shard : part.shards) {
        EXPECT_EQ(static_cast<int>(shard.size()), quota);
        for (int idx : shard) {
            ASSERT_GE(idx, 0);
            ASSERT_LT(idx, 1200);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(FleetSizes, PartitionSweepTest,
                         ::testing::Values(10, 40, 100, 200));

TEST(DataProperties, NonIidDevicesHaveFewerClassesOnAverage)
{
    SyntheticConfig scfg;
    scfg.train_samples = 2000;
    auto split = make_synthetic_mnist(scfg);
    PartitionConfig pcfg;
    pcfg.num_devices = 100;
    pcfg.distribution = DataDistribution::NonIid50;
    auto part = partition_dataset(split.train, pcfg);
    double iid_mean = 0.0, non_mean = 0.0;
    int iid_n = 0, non_n = 0;
    for (int d = 0; d < 100; ++d) {
        if (part.non_iid[static_cast<size_t>(d)]) {
            non_mean += part.classes_per_device[static_cast<size_t>(d)];
            ++non_n;
        } else {
            iid_mean += part.classes_per_device[static_cast<size_t>(d)];
            ++iid_n;
        }
    }
    ASSERT_GT(iid_n, 0);
    ASSERT_GT(non_n, 0);
    EXPECT_GT(iid_mean / iid_n, non_mean / non_n + 2.0);
}

// ---------------------------------------------------------------- fl ---

TEST(EnergyProperties, WeakerNetworkNeverCheapensComm)
{
    const double payload = 25000;
    double prev_energy = 0.0;
    for (double bw : {90.0, 60.0, 35.0, 12.0}) {
        const double e = comm_energy(bw, comm_time_s(payload, bw));
        EXPECT_GT(e, prev_energy) << "bandwidth " << bw;
        prev_energy = e;
    }
}

TEST(EnergyProperties, OverheadPowerBetweenIdleAndPeak)
{
    for (Tier tier : {Tier::High, Tier::Mid, Tier::Low}) {
        const DeviceSpec &s = spec_for_tier(tier);
        EXPECT_GT(overhead_power_w(s), s.idle_w);
        EXPECT_LT(overhead_power_w(s), s.cpu_train_w);
    }
}

// ---------------------------------------------------------------- ps ---

/**
 * Bounded-staleness invariant, swept over the bound: whatever the
 * thread interleaving, no update the aggregator ever applies may exceed
 * the configured staleness bound S, and every push is either applied or
 * evicted — none silently lost.
 */
class StalenessBoundTest : public ::testing::TestWithParam<int>
{
};

TEST_P(StalenessBoundTest, NoAppliedUpdateExceedsTheBound)
{
    const int bound = GetParam();
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, 8};
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 160;
    cfg.data.test_samples = 40;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = 8;
    cfg.seed = 7 + static_cast<uint64_t>(bound);
    cfg.threads = 4;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.staleness_bound = bound;
    cfg.ps.shards = 4;
    FlSystem fl(cfg);
    ASSERT_NE(fl.ps(), nullptr);

    const std::vector<int> ids = {0, 1, 2, 3, 4, 5, 6, 7};
    for (uint64_t round = 0; round < 4; ++round) {
        const PsRoundStats st = fl.run_round(ids, round);
        EXPECT_EQ(st.pushed, static_cast<int>(ids.size()));
        EXPECT_EQ(st.applied + st.evicted, st.pushed);
        EXPECT_LE(st.max_staleness, bound) << "round " << round;
        EXPECT_LE(st.mean_staleness, bound);
    }
    EXPECT_LE(fl.ps()->aggregator().lifetime_max_applied_staleness(),
              bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, StalenessBoundTest,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace autofl
