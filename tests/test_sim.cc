/** @file Device simulator tests: specs, DVFS, power, perf, fleet, round. */
#include <gtest/gtest.h>

#include "nn/models.h"
#include "sim/round.h"
#include "sim/scale.h"

namespace autofl {
namespace {

TEST(DeviceSpec, TierOrderingMatchesTables)
{
    const auto &h = spec_for_tier(Tier::High);
    const auto &m = spec_for_tier(Tier::Mid);
    const auto &l = spec_for_tier(Tier::Low);
    // Table 2 GFLOPS.
    EXPECT_DOUBLE_EQ(h.cpu_gflops, 153.6);
    EXPECT_DOUBLE_EQ(m.cpu_gflops, 80.0);
    EXPECT_DOUBLE_EQ(l.cpu_gflops, 52.8);
    // Table 3 power and V-F step counts.
    EXPECT_DOUBLE_EQ(h.cpu_peak_w, 5.5);
    EXPECT_DOUBLE_EQ(l.gpu_peak_w, 2.0);
    EXPECT_EQ(h.cpu_vf_steps, 23);
    EXPECT_EQ(m.gpu_vf_steps, 9);
    EXPECT_EQ(l.cpu_vf_steps, 15);
    // GPU training throughput is derated below the CPU's.
    EXPECT_LT(h.gpu_gflops, h.cpu_gflops);
}

TEST(DeviceSpec, Labels)
{
    EXPECT_EQ(tier_label(Tier::High), "H");
    EXPECT_EQ(tier_label(Tier::Low), "L");
    EXPECT_EQ(target_label(ExecTarget::Cpu), "CPU");
    EXPECT_EQ(target_label(ExecTarget::Gpu), "GPU");
}

TEST(Dvfs, LadderMonotoneAndBounded)
{
    DvfsLadder ladder(10, 2.0);
    EXPECT_EQ(ladder.steps(), 10);
    for (int i = 1; i < ladder.steps(); ++i)
        EXPECT_GT(ladder.freq_frac(i), ladder.freq_frac(i - 1));
    EXPECT_DOUBLE_EQ(ladder.freq_frac(9), 1.0);
    EXPECT_DOUBLE_EQ(ladder.freq_frac(0), 0.4);
    EXPECT_DOUBLE_EQ(ladder.freq_ghz(9), 2.0);
}

TEST(Dvfs, PowerIsCubicInFrequency)
{
    DvfsLadder ladder(5, 1.0);
    for (int i = 0; i < 5; ++i) {
        const double f = ladder.freq_frac(i);
        EXPECT_NEAR(ladder.power_frac(i), f * f * f, 1e-12);
    }
}

TEST(Dvfs, LevelMapping)
{
    DvfsLadder ladder(23, 2.8);
    EXPECT_EQ(ladder.step_for_level(DvfsLevel::Low), 0);
    EXPECT_EQ(ladder.step_for_level(DvfsLevel::High), 22);
    EXPECT_EQ(ladder.step_for_level(DvfsLevel::Mid), 11);
    EXPECT_LT(ladder.freq_frac_for_level(DvfsLevel::Low),
              ladder.freq_frac_for_level(DvfsLevel::Mid));
}

TEST(Dvfs, LadderForTargetUsesSpecSteps)
{
    const auto &h = spec_for_tier(Tier::High);
    EXPECT_EQ(ladder_for(h, ExecTarget::Cpu).steps(), 23);
    EXPECT_EQ(ladder_for(h, ExecTarget::Gpu).steps(), 7);
}

TEST(Power, BusyPowerRisesWithFrequency)
{
    const auto &spec = spec_for_tier(Tier::High);
    const double lo = busy_power_w(spec, ExecTarget::Cpu, 0.4);
    const double mid = busy_power_w(spec, ExecTarget::Cpu, 0.7);
    const double hi = busy_power_w(spec, ExecTarget::Cpu, 1.0);
    EXPECT_LT(lo, mid);
    EXPECT_LT(mid, hi);
    EXPECT_NEAR(hi, spec.cpu_train_w, 1e-9);
    EXPECT_GT(lo, spec.idle_w);
}

TEST(Power, GpuRailCheaperThanCpu)
{
    const auto &spec = spec_for_tier(Tier::High);
    EXPECT_LT(busy_power_w(spec, ExecTarget::Gpu, 1.0),
              busy_power_w(spec, ExecTarget::Cpu, 1.0));
}

TEST(Power, ComputeEnergySplitsBusyIdle)
{
    const auto &spec = spec_for_tier(Tier::Mid);
    const ComputeEnergy e =
        compute_energy(spec, ExecTarget::Cpu, 1.0, 2.0, 3.0);
    EXPECT_NEAR(e.busy_j, spec.cpu_train_w * 2.0, 1e-9);
    EXPECT_NEAR(e.idle_j, spec.idle_w * 3.0, 1e-9);
    EXPECT_NEAR(e.total(), e.busy_j + e.idle_j, 1e-12);
}

TEST(Power, CommEnergyGrowsAsSignalWeakens)
{
    // Same transfer time, weaker link -> more TX energy (Eq. 3).
    EXPECT_LT(comm_energy(80.0, 1.0), comm_energy(30.0, 1.0));
    EXPECT_LT(comm_energy(30.0, 1.0), comm_energy(5.0, 1.0));
}

TEST(Power, IdleEnergyScalesWithTime)
{
    const auto &spec = spec_for_tier(Tier::Low);
    EXPECT_NEAR(idle_energy(spec, 10.0), spec.idle_w * 10.0, 1e-12);
}

TEST(Perf, MemBoundFractionDecreasesWithIntensity)
{
    EXPECT_GT(mem_bound_fraction(0.5), mem_bound_fraction(5.0));
    EXPECT_GE(mem_bound_fraction(1000.0), 0.05);
    EXPECT_LE(mem_bound_fraction(0.0001), 0.9);
}

TEST(Perf, TierGapShrinksForMemoryBoundModels)
{
    // Section 3.1: H/L perf gap ~2.1x for CNN-like, ~1.5x for LSTM-like.
    DeviceRoundState quiet;
    quiet.bandwidth_mbps = 80;
    // Overhead/throttle off: this isolates the rate model.
    ComputeProfile compute_heavy{1e9, 0.2, 1e4, 32, false};
    ComputeProfile mem_heavy{1e9, 0.65, 1e4, 32, false};

    const auto &h = spec_for_tier(Tier::High);
    const auto &l = spec_for_tier(Tier::Low);
    const double gap_compute =
        compute_time_s(l, ExecTarget::Cpu, 1.0, compute_heavy, quiet) /
        compute_time_s(h, ExecTarget::Cpu, 1.0, compute_heavy, quiet);
    const double gap_mem =
        compute_time_s(l, ExecTarget::Cpu, 1.0, mem_heavy, quiet) /
        compute_time_s(h, ExecTarget::Cpu, 1.0, mem_heavy, quiet);
    EXPECT_GT(gap_compute, gap_mem);
    EXPECT_GT(gap_compute, 1.8);
    EXPECT_LT(gap_mem, 1.8);
}

TEST(Perf, InterferenceHurtsCpuMoreThanGpu)
{
    DeviceRoundState loaded;
    loaded.co_cpu_util = 0.7;
    loaded.co_mem_util = 0.4;
    loaded.bandwidth_mbps = 80;
    DeviceRoundState quiet;
    quiet.bandwidth_mbps = 80;
    ComputeProfile prof{1e9, 0.3, 1e4, 32, false};
    const auto &spec = spec_for_tier(Tier::High);

    const double cpu_slow =
        compute_time_s(spec, ExecTarget::Cpu, 1.0, prof, loaded) /
        compute_time_s(spec, ExecTarget::Cpu, 1.0, prof, quiet);
    const double gpu_slow =
        compute_time_s(spec, ExecTarget::Gpu, 1.0, prof, loaded) /
        compute_time_s(spec, ExecTarget::Gpu, 1.0, prof, quiet);
    EXPECT_GT(cpu_slow, 1.5);
    EXPECT_LT(gpu_slow, 1.4);
}

TEST(Perf, DvfsSlowsCompute)
{
    DeviceRoundState quiet;
    quiet.bandwidth_mbps = 80;
    ComputeProfile prof{1e9, 0.2, 1e4, 32, false};
    const auto &spec = spec_for_tier(Tier::Mid);
    EXPECT_GT(compute_time_s(spec, ExecTarget::Cpu, 0.4, prof, quiet),
              compute_time_s(spec, ExecTarget::Cpu, 1.0, prof, quiet));
}

TEST(Perf, CommTimeInverselyProportionalToBandwidth)
{
    const double t80 = comm_time_s(25000, 80.0);
    const double t20 = comm_time_s(25000, 20.0);
    EXPECT_NEAR(t20 / t80, 4.0, 1e-9);
}

TEST(Fleet, DefaultMixIs30_70_100)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 1);
    EXPECT_EQ(fleet.size(), 200);
    EXPECT_EQ(fleet.count_of(Tier::High), 30);
    EXPECT_EQ(fleet.count_of(Tier::Mid), 70);
    EXPECT_EQ(fleet.count_of(Tier::Low), 100);
    EXPECT_EQ(fleet.ids_of(Tier::High).size(), 30u);
}

TEST(Fleet, NoVarianceScenarioIsQuiet)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 2);
    fleet.begin_round();
    for (int d = 0; d < fleet.size(); ++d) {
        EXPECT_EQ(fleet.device(d).state().co_cpu_util, 0.0);
        EXPECT_GT(fleet.device(d).state().bandwidth_mbps, 40.0);
    }
}

TEST(Fleet, InterferenceScenarioLoadsSomeDevices)
{
    Fleet fleet(FleetMix{}, VarianceScenario::Interference, 3);
    fleet.begin_round();
    int loaded = 0;
    for (int d = 0; d < fleet.size(); ++d)
        if (fleet.device(d).state().co_cpu_util > 0.0)
            ++loaded;
    EXPECT_GT(loaded, 50);
    EXPECT_LT(loaded, 150);
}

TEST(Fleet, WeakNetworkScenarioDegradesBandwidth)
{
    Fleet fleet(FleetMix{}, VarianceScenario::WeakNetwork, 4);
    fleet.begin_round();
    double mean_bw = 0.0;
    for (int d = 0; d < fleet.size(); ++d)
        mean_bw += fleet.device(d).state().bandwidth_mbps;
    mean_bw /= fleet.size();
    EXPECT_LT(mean_bw, 30.0);
}

RoundExec
run_simple_round(const std::vector<ParticipantPlan> &plans,
                 Fleet &fleet, double deadline_multiple = 2.5)
{
    std::vector<ComputeProfile> profiles(plans.size(),
                                         ComputeProfile{5e7, 0.25, 25000});
    RoundSimConfig cfg;
    cfg.deadline_multiple = deadline_multiple;
    return simulate_round(fleet, plans, profiles, cfg);
}

TEST(Round, StragglerGatesRoundTime)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 5);
    fleet.begin_round();
    // One high-end and one low-end participant, CPU at max.
    std::vector<ParticipantPlan> plans = {
        {fleet.ids_of(Tier::High)[0], ExecTarget::Cpu, DvfsLevel::High},
        {fleet.ids_of(Tier::Low)[0], ExecTarget::Cpu, DvfsLevel::High},
    };
    RoundExec exec = run_simple_round(plans, fleet, 0.0);
    ASSERT_EQ(exec.participants.size(), 2u);
    const auto &h = exec.participants[0];
    const auto &l = exec.participants[1];
    EXPECT_LT(h.comp_s, l.comp_s);
    EXPECT_NEAR(exec.round_s, l.completion_s(), 1e-9);
    // The fast device waits for the straggler.
    EXPECT_GT(h.wait_s, 0.0);
    EXPECT_NEAR(h.wait_s, exec.round_s - h.completion_s(), 1e-9);
}

TEST(Round, DeadlineDropsSevereStragglers)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 6);
    fleet.begin_round();
    // Nineteen high-end devices and one low-end straggler with a tight
    // deadline: the straggler must be dropped.
    std::vector<ParticipantPlan> plans;
    auto high = fleet.ids_of(Tier::High);
    for (int i = 0; i < 19; ++i)
        plans.push_back({high[static_cast<size_t>(i)], ExecTarget::Cpu,
                         DvfsLevel::High});
    plans.push_back({fleet.ids_of(Tier::Low)[0], ExecTarget::Cpu,
                     DvfsLevel::High});
    RoundExec exec = run_simple_round(plans, fleet, 1.2);
    EXPECT_EQ(exec.included_count(), 19);
    EXPECT_FALSE(exec.participants.back().included);
    // Round time is capped at the deadline.
    EXPECT_NEAR(exec.round_s, exec.deadline_s, 1e-9);
    // Work excludes the dropped device.
    EXPECT_NEAR(exec.work_flops, 19 * 5e7, 1.0);
}

TEST(Round, EnergyAccountingIsConsistent)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 7);
    fleet.begin_round();
    std::vector<ParticipantPlan> plans = {
        {0, ExecTarget::Cpu, DvfsLevel::High},
        {100, ExecTarget::Cpu, DvfsLevel::High},
    };
    RoundExec exec = run_simple_round(plans, fleet);
    double sum = 0.0;
    for (const auto &p : exec.participants) {
        EXPECT_GT(p.comp_j, 0.0);
        EXPECT_GT(p.comm_j, 0.0);
        sum += p.energy_j();
    }
    EXPECT_NEAR(sum, exec.energy_participants_j, 1e-9);
    EXPECT_GT(exec.energy_idle_fleet_j, 0.0);
    EXPECT_NEAR(exec.energy_global_j(),
                exec.energy_participants_j + exec.energy_idle_fleet_j,
                1e-9);
}

TEST(Round, LowerDvfsSavesEnergyWhenSlackExists)
{
    // A fast device sharing a round with a straggler: running the fast
    // device at Low frequency must reduce its energy (it still finishes
    // before the straggler).
    Fleet fleet(FleetMix{}, VarianceScenario::None, 8);
    fleet.begin_round();
    const int fast = fleet.ids_of(Tier::High)[0];
    const int slow = fleet.ids_of(Tier::Low)[0];

    auto energy_at = [&](DvfsLevel level) {
        std::vector<ParticipantPlan> plans = {
            {fast, ExecTarget::Cpu, level},
            {slow, ExecTarget::Cpu, DvfsLevel::High},
        };
        RoundExec exec = run_simple_round(plans, fleet, 0.0);
        return exec.participants[0].energy_j();
    };
    // With a static power fraction, Mid frequency is the energy sweet
    // spot; Low is roughly break-even with High.
    EXPECT_LT(energy_at(DvfsLevel::Mid), energy_at(DvfsLevel::High));
}

TEST(Round, EmptyPlanYieldsZeroRound)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 9);
    fleet.begin_round();
    RoundExec exec = simulate_round(fleet, {}, {}, {});
    EXPECT_EQ(exec.round_s, 0.0);
    EXPECT_EQ(exec.energy_global_j(), 0.0);
}

TEST(Variance, ScenarioNames)
{
    EXPECT_EQ(variance_scenario_name(VarianceScenario::None),
              "no-variance");
    EXPECT_EQ(variance_scenario_name(VarianceScenario::Combined),
              "combined");
}

TEST(Variance, TxPowerBuckets)
{
    EXPECT_DOUBLE_EQ(NetworkModel::tx_power_w(80.0), 0.7);
    EXPECT_DOUBLE_EQ(NetworkModel::tx_power_w(50.0), 1.2);
    EXPECT_DOUBLE_EQ(NetworkModel::tx_power_w(30.0), 1.8);
    EXPECT_DOUBLE_EQ(NetworkModel::tx_power_w(5.0), 2.5);
}

} // namespace
} // namespace autofl
