/** @file Selection policy tests: baselines, templates, oracle. */
#include <set>

#include <gtest/gtest.h>

#include "nn/models.h"
#include "policies/oracle.h"
#include "policies/policy.h"

namespace autofl {
namespace {

GlobalObservation
obs()
{
    GlobalObservation g;
    g.profile = model_profile(Workload::CnnMnist);
    g.params = {16, 5, 20};
    return g;
}

std::vector<LocalObservation>
locals_for(const Fleet &fleet)
{
    std::vector<LocalObservation> out(static_cast<size_t>(fleet.size()));
    for (auto &l : out) {
        l.state.bandwidth_mbps = 80.0;
        l.data_classes = 10;
        l.total_classes = 10;
    }
    return out;
}

int
count_tier(const Fleet &fleet, const std::vector<ParticipantPlan> &plans,
           Tier t)
{
    int n = 0;
    for (const auto &p : plans)
        if (fleet.device(p.device_id).tier() == t)
            ++n;
    return n;
}

TEST(Table4, TemplatesMatchPaper)
{
    const auto &clusters = table4_clusters();
    ASSERT_EQ(clusters.size(), 8u);
    EXPECT_TRUE(clusters[0].random);
    EXPECT_EQ(clusters[1].high, 20);   // C1 = Performance
    EXPECT_EQ(clusters[7].low, 20);    // C7 = Power
    EXPECT_EQ(clusters[3].high, 10);   // C3 = 10/5/5
    EXPECT_EQ(clusters[3].mid, 5);
    EXPECT_EQ(clusters[3].low, 5);
    for (const auto &c : clusters)
        if (!c.random)
            EXPECT_EQ(c.high + c.mid + c.low, 20) << c.label;
}

TEST(RandomPolicy, SelectsKDistinctDevices)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 31);
    auto policy = make_random_policy(fleet, 1);
    EXPECT_EQ(policy->name(), "FedAvg-Random");
    auto plans = policy->select(obs(), locals_for(fleet), 20);
    EXPECT_EQ(plans.size(), 20u);
    std::set<int> ids;
    for (const auto &p : plans)
        ids.insert(p.device_id);
    EXPECT_EQ(ids.size(), 20u);
}

TEST(RandomPolicy, CoversFleetOverManyRounds)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 32);
    auto policy = make_random_policy(fleet, 2);
    std::set<int> seen;
    for (int r = 0; r < 60; ++r)
        for (const auto &p : policy->select(obs(), locals_for(fleet), 20))
            seen.insert(p.device_id);
    EXPECT_GT(seen.size(), 190u);
}

TEST(PerformancePolicy, SelectsOnlyHighEnd)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 33);
    auto policy = make_performance_policy(fleet, 3);
    auto plans = policy->select(obs(), locals_for(fleet), 20);
    EXPECT_EQ(count_tier(fleet, plans, Tier::High), 20);
}

TEST(PowerPolicy, SelectsOnlyLowEnd)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 34);
    auto policy = make_power_policy(fleet, 4);
    auto plans = policy->select(obs(), locals_for(fleet), 20);
    EXPECT_EQ(count_tier(fleet, plans, Tier::Low), 20);
}

class TemplateScalingTest
    : public ::testing::TestWithParam<std::pair<const char *, int>>
{
};

TEST_P(TemplateScalingTest, TierCountsScaleWithK)
{
    const auto [label, k] = GetParam();
    Fleet fleet(FleetMix{}, VarianceScenario::None, 35);
    ClusterTemplate tmpl;
    for (const auto &c : table4_clusters())
        if (c.label == label)
            tmpl = c;
    StaticClusterPolicy policy(fleet, tmpl, StaticExecSettings{}, 5);
    auto plans = policy.select(obs(), locals_for(fleet), k);
    EXPECT_EQ(static_cast<int>(plans.size()), k);
    // Proportions approximately preserved (within rounding).
    const int h = count_tier(fleet, plans, Tier::High);
    EXPECT_NEAR(h, tmpl.high * k / 20.0, 1.01) << label << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Combos, TemplateScalingTest,
    ::testing::Values(std::pair{"C3", 20}, std::pair{"C3", 10},
                      std::pair{"C4", 10}, std::pair{"C2", 10},
                      std::pair{"C5", 20}));

TEST(StaticClusterPolicy, AppliesExecSettings)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 36);
    ClusterTemplate c3;
    for (const auto &c : table4_clusters())
        if (c.label == "C3")
            c3 = c;
    StaticClusterPolicy policy(fleet, c3,
                               {ExecTarget::Gpu, DvfsLevel::Mid}, 6);
    for (const auto &p : policy.select(obs(), locals_for(fleet), 20)) {
        EXPECT_EQ(p.target, ExecTarget::Gpu);
        EXPECT_EQ(p.dvfs, DvfsLevel::Mid);
    }
}

TEST(OraclePolicy, PerTierExecSettings)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 37);
    OracleSpec spec;
    for (const auto &c : table4_clusters())
        if (c.label == "C3")
            spec.cluster = c;
    spec.exec.high = {ExecTarget::Gpu, DvfsLevel::Low};
    spec.exec.mid = {ExecTarget::Cpu, DvfsLevel::Mid};
    spec.exec.low = {ExecTarget::Cpu, DvfsLevel::High};
    OraclePolicy policy(fleet, spec, "O_FL", 7);
    for (const auto &p : policy.select(obs(), locals_for(fleet), 20)) {
        switch (fleet.device(p.device_id).tier()) {
          case Tier::High:
            EXPECT_EQ(p.target, ExecTarget::Gpu);
            EXPECT_EQ(p.dvfs, DvfsLevel::Low);
            break;
          case Tier::Mid:
            EXPECT_EQ(p.target, ExecTarget::Cpu);
            EXPECT_EQ(p.dvfs, DvfsLevel::Mid);
            break;
          case Tier::Low:
            EXPECT_EQ(p.dvfs, DvfsLevel::High);
            break;
        }
    }
}

TEST(OraclePolicy, PrefersMarkedDevices)
{
    Fleet fleet(FleetMix{}, VarianceScenario::None, 38);
    OracleSpec spec;
    for (const auto &c : table4_clusters())
        if (c.label == "C3")
            spec.cluster = c;
    OraclePolicy policy(fleet, spec, "O_participant", 8);

    // Mark 15 high-end, 10 mid, 10 low as preferred (IID).
    std::vector<bool> preferred(200, false);
    for (int d = 0; d < 15; ++d)
        preferred[static_cast<size_t>(d)] = true;          // high ids 0..29
    for (int d = 30; d < 40; ++d)
        preferred[static_cast<size_t>(d)] = true;          // mid ids 30..99
    for (int d = 100; d < 110; ++d)
        preferred[static_cast<size_t>(d)] = true;          // low ids 100..199
    policy.set_preferred(preferred);

    auto plans = policy.select(obs(), locals_for(fleet), 20);
    int chosen_preferred = 0;
    for (const auto &p : plans)
        if (preferred[static_cast<size_t>(p.device_id)])
            ++chosen_preferred;
    // C3 = 10 H + 5 M + 5 L at K=20; enough preferred exist in each tier.
    EXPECT_EQ(chosen_preferred, 20);
}

} // namespace
} // namespace autofl
