/** @file Synthetic dataset generators and partitioner tests. */
#include <set>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"

namespace autofl {
namespace {

SyntheticConfig
small_cfg()
{
    SyntheticConfig cfg;
    cfg.train_samples = 600;
    cfg.test_samples = 200;
    cfg.seed = 5;
    return cfg;
}

class GeneratorTest : public ::testing::TestWithParam<Workload>
{
};

TEST_P(GeneratorTest, ShapesAndLabels)
{
    const Workload w = GetParam();
    auto split = make_dataset(w, small_cfg());
    EXPECT_EQ(split.train.size(), 600u);
    EXPECT_EQ(split.test.size(), 200u);
    EXPECT_EQ(split.train.num_classes, model_num_classes(w));
    EXPECT_EQ(split.train.x.dim(0), 600);
    for (int y : split.train.y) {
        ASSERT_GE(y, 0);
        ASSERT_LT(y, split.train.num_classes);
    }
}

TEST_P(GeneratorTest, DeterministicForSeed)
{
    const Workload w = GetParam();
    auto a = make_dataset(w, small_cfg());
    auto b = make_dataset(w, small_cfg());
    ASSERT_EQ(a.train.size(), b.train.size());
    EXPECT_EQ(a.train.y, b.train.y);
    for (size_t i = 0; i < a.train.x.size(); i += 97)
        EXPECT_EQ(a.train.x[i], b.train.x[i]);
}

TEST_P(GeneratorTest, SeedsChangeData)
{
    const Workload w = GetParam();
    auto a = make_dataset(w, small_cfg());
    SyntheticConfig cfg2 = small_cfg();
    cfg2.seed = 6;
    auto b = make_dataset(w, cfg2);
    EXPECT_NE(a.train.y, b.train.y);
}

TEST_P(GeneratorTest, AllClassesPresent)
{
    const Workload w = GetParam();
    auto split = make_dataset(w, small_cfg());
    std::set<int> classes(split.train.y.begin(), split.train.y.end());
    EXPECT_EQ(static_cast<int>(classes.size()), split.train.num_classes);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, GeneratorTest,
                         ::testing::ValuesIn(all_workloads()));

TEST(Dataset, SubsetCopiesRows)
{
    auto split = make_synthetic_mnist(small_cfg());
    Dataset sub = split.train.subset({3, 10, 42});
    EXPECT_EQ(sub.size(), 3u);
    EXPECT_EQ(sub.y[0], split.train.y[3]);
    EXPECT_EQ(sub.y[2], split.train.y[42]);
    // Compare one pixel of the middle sample.
    EXPECT_EQ(sub.x.at4(1, 0, 5, 5), split.train.x.at4(10, 0, 5, 5));
}

TEST(Dataset, BatchImagesLayout)
{
    auto split = make_synthetic_mnist(small_cfg());
    Tensor b = split.train.batch_x({0, 1});
    EXPECT_EQ(b.shape(),
              (std::vector<int>{2, 1, kMnistSide, kMnistSide}));
    EXPECT_EQ(b.at4(1, 0, 3, 4), split.train.x.at4(1, 0, 3, 4));
}

TEST(Dataset, BatchTextTransposesToTimeMajor)
{
    auto split = make_synthetic_text(small_cfg());
    Tensor b = split.train.batch_x({2, 7, 9});
    EXPECT_EQ(b.shape(), (std::vector<int>{kTextSeqLen, 3, kTextVocab}));
    // Sample 7's timestep 4 should land at [4, 1, :].
    for (int v = 0; v < kTextVocab; ++v)
        EXPECT_EQ(b.at3(4, 1, v), split.train.x.at3(7, 4, v));
}

TEST(Dataset, TextSamplesAreOneHot)
{
    auto split = make_synthetic_text(small_cfg());
    for (int s = 0; s < 10; ++s) {
        for (int t = 0; t < kTextSeqLen; ++t) {
            float sum = 0.0f;
            for (int v = 0; v < kTextVocab; ++v)
                sum += split.train.x.at3(s, t, v);
            EXPECT_FLOAT_EQ(sum, 1.0f);
        }
    }
}

TEST(Dataset, HistogramCountsLabels)
{
    Dataset d;
    d.num_classes = 3;
    d.x = Tensor({4, 1});
    d.y = {0, 2, 2, 1};
    auto h = d.class_histogram();
    EXPECT_EQ(h, (std::vector<int>{1, 1, 2}));
    EXPECT_EQ(d.distinct_classes(), 3);
}

TEST(Partition, NamesAndFractions)
{
    EXPECT_EQ(data_distribution_name(DataDistribution::IdealIid),
              "Ideal IID");
    EXPECT_DOUBLE_EQ(non_iid_fraction(DataDistribution::IdealIid), 0.0);
    EXPECT_DOUBLE_EQ(non_iid_fraction(DataDistribution::NonIid50), 0.5);
    EXPECT_DOUBLE_EQ(non_iid_fraction(DataDistribution::NonIid75), 0.75);
    EXPECT_DOUBLE_EQ(non_iid_fraction(DataDistribution::NonIid100), 1.0);
}

class PartitionTest : public ::testing::TestWithParam<DataDistribution>
{
};

TEST_P(PartitionTest, ShardsCoverAllDevicesAtQuota)
{
    auto split = make_synthetic_mnist(small_cfg());
    PartitionConfig cfg;
    cfg.num_devices = 30;
    cfg.distribution = GetParam();
    auto part = partition_dataset(split.train, cfg);
    ASSERT_EQ(part.shards.size(), 30u);
    const int quota = 600 / 30;
    for (const auto &shard : part.shards)
        EXPECT_EQ(static_cast<int>(shard.size()), quota);
}

TEST_P(PartitionTest, NonIidCountMatchesScenario)
{
    auto split = make_synthetic_mnist(small_cfg());
    PartitionConfig cfg;
    cfg.num_devices = 40;
    cfg.distribution = GetParam();
    auto part = partition_dataset(split.train, cfg);
    int non_iid = 0;
    for (bool b : part.non_iid)
        if (b)
            ++non_iid;
    EXPECT_EQ(non_iid,
              static_cast<int>(non_iid_fraction(GetParam()) * 40 + 0.5));
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, PartitionTest,
    ::testing::Values(DataDistribution::IdealIid, DataDistribution::NonIid50,
                      DataDistribution::NonIid75,
                      DataDistribution::NonIid100));

TEST(Partition, IidDevicesSeeAllClasses)
{
    auto split = make_synthetic_mnist(small_cfg());
    PartitionConfig cfg;
    cfg.num_devices = 20;  // Quota 30 >> 10 classes.
    cfg.distribution = DataDistribution::IdealIid;
    auto part = partition_dataset(split.train, cfg);
    for (int d = 0; d < 20; ++d)
        EXPECT_EQ(part.classes_per_device[static_cast<size_t>(d)], 10);
}

TEST(Partition, DirichletDevicesAreConcentrated)
{
    auto split = make_synthetic_mnist(small_cfg());
    PartitionConfig cfg;
    cfg.num_devices = 20;
    cfg.distribution = DataDistribution::NonIid100;
    cfg.dirichlet_alpha = 0.1;
    auto part = partition_dataset(split.train, cfg);
    // With alpha = 0.1 most shards hold only a few classes.
    double mean_classes = 0.0;
    for (int c : part.classes_per_device)
        mean_classes += c;
    mean_classes /= 20.0;
    EXPECT_LT(mean_classes, 6.0);
}

TEST(Partition, DeterministicForSeed)
{
    auto split = make_synthetic_mnist(small_cfg());
    PartitionConfig cfg;
    cfg.num_devices = 10;
    cfg.distribution = DataDistribution::NonIid50;
    auto a = partition_dataset(split.train, cfg);
    auto b = partition_dataset(split.train, cfg);
    EXPECT_EQ(a.shards, b.shards);
    EXPECT_EQ(a.non_iid, b.non_iid);
}

} // namespace
} // namespace autofl
