/**
 * @file
 * Serving-plane tests: snapshot-handle semantics (versioning, refresh,
 * lifetime under concurrent pipelined training — the TSan target), and
 * the batched InferenceEngine's parity contract against the per-sample
 * path (bit-identical on the scalar arch, 1e-4 relative on SIMD;
 * deterministic evaluation at any fan-out).
 */
#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fl/system.h"
#include "kernels/arch.h"
#include "ps/ps_server.h"
#include "serve/model_service.h"
#include "test_util.h"

namespace autofl {
namespace {

using testing::random_weights;
using testing::ScopedKernelArch;
using testing::small_test_set;

/** Handle weights materialized for vector comparisons (the handle
 *  itself exposes a span view since the artifact-backed source). */
std::vector<float>
as_vec(const SnapshotHandle &h)
{
    const auto w = h.weights();
    return {w.begin(), w.end()};
}

// ------------------------------------------------------ model service --

TEST(ModelService, PublishVersionsOnlyRealChanges)
{
    ModelService ms(Workload::CnnMnist);
    EXPECT_FALSE(ms.store_backed());
    EXPECT_FALSE(ms.acquire().valid());  // Nothing published yet.

    std::vector<float> w = random_weights(Workload::CnnMnist, 1);
    EXPECT_EQ(ms.publish(w), 1u);
    EXPECT_EQ(ms.publish(w), 1u);  // Identical re-publish: same version.
    w[0] += 1.0f;
    EXPECT_EQ(ms.publish(w), 2u);
    EXPECT_EQ(ms.latest_epoch(), 2u);

    const SnapshotHandle h = ms.acquire();
    ASSERT_TRUE(h.valid());
    EXPECT_EQ(h.epoch(), 2u);
    EXPECT_EQ(as_vec(h), w);
}

TEST(ModelService, RefreshHonorsMaxSnapshotLag)
{
    ServeConfig cfg;
    cfg.max_snapshot_lag = 2;
    ModelService ms(Workload::CnnMnist, cfg);
    std::vector<float> w = random_weights(Workload::CnnMnist, 2);

    SnapshotHandle h;
    ms.publish(w);
    EXPECT_TRUE(ms.refresh(h));  // Invalid handles always refresh.
    EXPECT_EQ(h.epoch(), 1u);

    // Two more versions: lag 2 is still within the configured bound.
    w[0] += 1.0f;
    ms.publish(w);
    w[0] += 1.0f;
    ms.publish(w);
    EXPECT_FALSE(ms.refresh(h));
    EXPECT_EQ(h.epoch(), 1u);

    // A third version exceeds the lag: the handle swaps to latest.
    w[0] += 1.0f;
    ms.publish(w);
    EXPECT_TRUE(ms.refresh(h));
    EXPECT_EQ(h.epoch(), 4u);
}

TEST(ModelService, HandleKeepsOldVersionAliveAfterNewPublishes)
{
    ModelService ms(Workload::CnnMnist);
    std::vector<float> w = random_weights(Workload::CnnMnist, 3);
    ms.publish(w);
    const SnapshotHandle old = ms.acquire();
    const std::vector<float> expect = as_vec(old);

    for (int i = 0; i < 4; ++i) {
        w[static_cast<size_t>(i)] += 1.0f;
        ms.publish(w);
    }
    // The old handle still reads its own immutable version.
    EXPECT_EQ(old.epoch(), 1u);
    EXPECT_EQ(as_vec(old), expect);
    EXPECT_EQ(ms.latest_epoch(), 5u);
}

TEST(ModelService, StoreAttachVisibleToConcurrentAcquire)
{
    // The store_ pointer is written once by attach_store and read by
    // every acquire()/store_backed() without the service mutex; the
    // TSan target for that pairing. Readers spin on acquire() while
    // the main thread attaches: they must transition from the invalid
    // local source to the store's epoch-0 snapshot, never tearing.
    const std::vector<float> w = random_weights(Workload::CnnMnist, 21);
    ShardedStore store(w, 4);
    ModelService ms(Workload::CnnMnist);

    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_acquire)) {
                const SnapshotHandle h = ms.acquire();
                if (h.valid()) {
                    ASSERT_EQ(h.weights().size(), w.size());
                    ASSERT_EQ(as_vec(h), w);
                }
            }
        });
    }
    ms.attach_store(&store);
    // Every reader must observe the attached store promptly.
    while (!ms.acquire().valid()) {
    }
    EXPECT_TRUE(ms.store_backed());
    stop.store(true, std::memory_order_release);
    for (auto &t : readers)
        t.join();
    EXPECT_EQ(as_vec(ms.acquire()), w);
}

// ------------------------------------------------- batched inference --

/** Batched and per-sample logits for the same samples. */
struct ParityLogits
{
    Tensor batched;                   ///< {n, classes}.
    std::vector<Tensor> per_sample;   ///< n x {1, classes}.
};

ParityLogits
parity_logits(Workload w, int n)
{
    ParityLogits out;
    const Dataset test = small_test_set(w, n);
    ServeConfig cfg;
    cfg.batch_size = n;
    cfg.workers = 1;
    ModelService ms(w, cfg);
    ms.publish(random_weights(w, 7));
    const SnapshotHandle h = ms.acquire();

    std::vector<int> all(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        all[static_cast<size_t>(i)] = i;
    out.batched = ms.engine().forward(h, test.batch_x(all));
    for (int i = 0; i < n; ++i)
        out.per_sample.push_back(ms.engine().forward(h, test.batch_x({i})));
    return out;
}

TEST(InferenceEngine, BatchedMatchesPerSampleBitwiseOnScalar)
{
    ScopedKernelArch scalar(kernels::KernelArch::Scalar);
    for (Workload w : all_workloads()) {
        const int n = 17;  // Odd: exercises no special batch shape.
        const ParityLogits p = parity_logits(w, n);
        const int classes = p.batched.dim(1);
        for (int i = 0; i < n; ++i) {
            for (int c = 0; c < classes; ++c) {
                EXPECT_EQ(p.batched.at2(i, c),
                          p.per_sample[static_cast<size_t>(i)].at2(0, c))
                    << workload_name(w) << " sample " << i << " class "
                    << c;
            }
        }
    }
}

TEST(InferenceEngine, BatchedMatchesPerSampleWithin1e4OnAnyArch)
{
    // Runs on whatever the dispatch selected (AVX2 where available):
    // GEMM variants may tile rows differently per batch shape, so the
    // contract is the kernels' cross-variant tolerance, not bits.
    for (Workload w : all_workloads()) {
        const int n = 13;
        const ParityLogits p = parity_logits(w, n);
        const int classes = p.batched.dim(1);
        for (int i = 0; i < n; ++i) {
            for (int c = 0; c < classes; ++c) {
                const float a = p.batched.at2(i, c);
                const float b =
                    p.per_sample[static_cast<size_t>(i)].at2(0, c);
                const float tol = 1e-4f *
                    std::max(1.0f, std::max(std::fabs(a), std::fabs(b)));
                EXPECT_NEAR(a, b, tol)
                    << workload_name(w) << " sample " << i;
            }
        }
    }
}

TEST(InferenceEngine, InferMatchesForwardBitwiseOnScalar)
{
    // On the scalar arch infer() reduces every output element in the
    // same order as forward() — dropping the backward caches, widening
    // the conv GEMM across the batch and the inference gate kernel all
    // preserve the bits.
    ScopedKernelArch scalar(kernels::KernelArch::Scalar);
    for (Workload w : all_workloads()) {
        Sequential a = make_model(w);
        Sequential b = make_model(w);
        Rng rng(11);
        a.init_weights(rng);
        b.set_flat_weights(a.flat_weights());

        const Dataset test = small_test_set(w, 9);
        std::vector<int> idx = {0, 1, 2, 3, 4, 5, 6, 7, 8};
        Tensor y_fwd = a.forward(test.batch_x(idx));
        Tensor y_inf = b.infer(test.batch_x(idx));
        ASSERT_EQ(y_fwd.shape(), y_inf.shape());
        for (size_t i = 0; i < y_fwd.size(); ++i)
            ASSERT_EQ(y_fwd[i], y_inf[i]) << workload_name(w);
    }
}

TEST(InferenceEngine, InferMatchesForwardWithin1e4OnAnyArch)
{
    // SIMD variants may tile the batched conv GEMM differently and run
    // the polynomial-exp gate kernel, so cross-path agreement on any
    // arch is the kernels' 1e-4 relative contract.
    for (Workload w : all_workloads()) {
        Sequential a = make_model(w);
        Sequential b = make_model(w);
        Rng rng(11);
        a.init_weights(rng);
        b.set_flat_weights(a.flat_weights());

        const Dataset test = small_test_set(w, 9);
        std::vector<int> idx = {0, 1, 2, 3, 4, 5, 6, 7, 8};
        Tensor y_fwd = a.forward(test.batch_x(idx));
        Tensor y_inf = b.infer(test.batch_x(idx));
        ASSERT_EQ(y_fwd.shape(), y_inf.shape());
        for (size_t i = 0; i < y_fwd.size(); ++i) {
            const float tol = 1e-4f *
                std::max(1.0f, std::max(std::fabs(y_fwd[i]),
                                        std::fabs(y_inf[i])));
            ASSERT_NEAR(y_fwd[i], y_inf[i], tol) << workload_name(w);
        }
    }
}

TEST(InferenceEngine, EvaluateStampsEpochOnlyForValidHandles)
{
    const Dataset test = small_test_set(Workload::CnnMnist, 12);
    ServeConfig cfg;
    cfg.workers = 1;
    ModelService ms(Workload::CnnMnist, cfg);

    // Invalid handle: nothing ran, and the epoch stays 0 — a garbage
    // epoch stamp would make this indistinguishable from a real
    // epoch-N score of zero samples.
    const EvalStats none = ms.evaluate(ms.acquire(), test);
    EXPECT_EQ(none.samples, 0);
    EXPECT_EQ(none.epoch, 0u);

    // Valid handle: the scored snapshot's epoch is stamped, including
    // through epoch bumps.
    std::vector<float> w = random_weights(Workload::CnnMnist, 19);
    ms.publish(w);
    w[0] += 1.0f;
    ms.publish(w);
    const SnapshotHandle h = ms.acquire();
    const EvalStats real = ms.evaluate(h, test);
    EXPECT_EQ(real.samples, 12);
    EXPECT_EQ(real.epoch, 2u);
    EXPECT_EQ(real.epoch, h.epoch());
}

TEST(InferenceEngine, EvaluateDeterministicAcrossFanOutAndSlots)
{
    const Dataset test = small_test_set(Workload::CnnMnist, 230);
    ServeConfig cfg;
    cfg.batch_size = 32;
    cfg.workers = 4;
    ModelService ms(Workload::CnnMnist, cfg);
    ms.publish(random_weights(Workload::CnnMnist, 5));
    const SnapshotHandle h = ms.acquire();

    const EvalStats serial = ms.evaluate(h, test, 1);
    const EvalStats wide = ms.evaluate(h, test, 4);
    EXPECT_EQ(serial.samples, 230);
    EXPECT_EQ(serial.correct, wide.correct);
    EXPECT_DOUBLE_EQ(serial.accuracy, wide.accuracy);
    EXPECT_DOUBLE_EQ(serial.mean_loss, wide.mean_loss);
    EXPECT_EQ(serial.epoch, h.epoch());

    // Accuracy agrees with explicit per-sample argmax classification.
    std::vector<int> all(static_cast<size_t>(test.size()));
    for (size_t i = 0; i < all.size(); ++i)
        all[i] = static_cast<int>(i);
    const std::vector<int> cls = ms.classify(h, test, all);
    int correct = 0;
    for (size_t i = 0; i < all.size(); ++i)
        correct += cls[i] == test.y[i] ? 1 : 0;
    EXPECT_EQ(serial.correct, correct);
}

TEST(InferenceEngine, ScalarAccuracyIndependentOfBatchSize)
{
    // On the scalar arch logits are bit-identical across batch shapes,
    // so the accuracy count cannot move with batch_size.
    ScopedKernelArch scalar(kernels::KernelArch::Scalar);
    const Dataset test = small_test_set(Workload::LstmShakespeare, 120);
    const std::vector<float> w =
        random_weights(Workload::LstmShakespeare, 17);

    auto accuracy_at = [&](int batch_size) {
        ServeConfig cfg;
        cfg.batch_size = batch_size;
        cfg.workers = 1;
        ModelService ms(Workload::LstmShakespeare, cfg);
        ms.publish(w);
        return ms.evaluate(ms.acquire(), test).correct;
    };
    const int per_sample = accuracy_at(1);
    EXPECT_EQ(per_sample, accuracy_at(32));
    EXPECT_EQ(per_sample, accuracy_at(120));
}

// ------------------------------------- snapshot lifetime under load --

FlSystemConfig
pipelined_system()
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, 6};
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 180;
    cfg.data.test_samples = 60;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = 6;
    cfg.seed = 31;
    cfg.threads = 4;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.staleness_bound = 1;
    cfg.ps.shards = 5;
    cfg.ps.pipeline_depth = 3;
    cfg.serve.batch_size = 16;
    cfg.serve.workers = 2;
    return cfg;
}

TEST(SnapshotLifetime, ConcurrentReadersSurviveStripedCommitWaves)
{
    // The TSan target: reader threads acquire/refresh/serve snapshot
    // handles while the pipelined runtime streams striped commit waves
    // underneath. Epochs must be monotone per reader and every held
    // handle must stay readable after training has moved on (the
    // refcount, not the store, owns the weights).
    constexpr int kRounds = 6;
    constexpr int kReaders = 3;
    FlSystem fl(pipelined_system());
    ASSERT_TRUE(fl.pipelined());
    ModelService &serve = fl.serve();

    const SnapshotHandle init = serve.acquire();
    ASSERT_TRUE(init.valid());
    EXPECT_EQ(init.epoch(), 0u);
    const std::vector<float> init_weights = as_vec(init);

    std::atomic<bool> stop{false};
    std::atomic<int> queries{0};
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    const std::vector<int> probe = {0, 3, 7, 11, 19, 23};
    for (int r = 0; r < kReaders; ++r) {
        readers.emplace_back([&, r] {
            SnapshotHandle h;
            uint64_t last_epoch = 0;
            while (!stop.load(std::memory_order_acquire)) {
                serve.refresh(h);
                ASSERT_TRUE(h.valid());
                ASSERT_GE(h.epoch(), last_epoch)
                    << "epoch rolled back under reader " << r;
                last_epoch = h.epoch();
                const std::vector<int> cls =
                    serve.classify(h, fl.test_set(), probe);
                ASSERT_EQ(cls.size(), probe.size());
                for (int c : cls)
                    ASSERT_GE(c, 0);
                queries.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    const std::vector<int> ids = {0, 1, 2, 3, 4, 5};
    for (int round = 0; round < kRounds; ++round)
        fl.submit_round(ids, static_cast<uint64_t>(round), nullptr);
    fl.drain();
    stop.store(true, std::memory_order_release);
    for (auto &t : readers)
        t.join();

    EXPECT_GT(queries.load(), 0);
    // Training committed real epochs past the readers' starting point.
    EXPECT_GT(serve.latest_epoch(), 0u);
    // The initial handle still reads epoch 0's exact weights.
    EXPECT_EQ(init.epoch(), 0u);
    EXPECT_EQ(as_vec(init), init_weights);
    for (float v : init.weights())
        ASSERT_TRUE(std::isfinite(v));
}

TEST(SnapshotLifetime, DestructionWithoutDrainIsSafe)
{
    // ~FlSystem tears the pipeline down with eval closures still
    // queued; those closures call into the serving plane, so the
    // ModelService must outlive the pipeline drain (destruction-order
    // regression test — fails as a use-after-free under TSan if the
    // members are re-ordered).
    FlSystem fl(pipelined_system());
    const std::vector<int> ids = {0, 1, 2, 3, 4, 5};
    for (int round = 0; round < 3; ++round)
        fl.submit_round(ids, static_cast<uint64_t>(round), nullptr);
    // No drain() — destruction does it.
}

TEST(SnapshotLifetime, StoreBackedServiceTracksCommitEpochs)
{
    FlSystem fl(pipelined_system());
    ModelService &serve = fl.serve();
    EXPECT_TRUE(serve.store_backed());

    const std::vector<int> ids = {0, 1, 2, 3, 4, 5};
    std::vector<uint64_t> final_epochs;
    std::mutex mu;
    for (int round = 0; round < 4; ++round) {
        fl.submit_round(ids, static_cast<uint64_t>(round),
                        [&](const PsRoundResult &res) {
                            std::lock_guard<std::mutex> lk(mu);
                            final_epochs.push_back(res.final_epoch);
                        });
    }
    fl.drain();
    ASSERT_EQ(final_epochs.size(), 4u);
    // After drain the latest snapshot is the last round's final commit.
    EXPECT_EQ(serve.latest_epoch(), final_epochs.back());
    // And FlSystem::evaluate scores exactly that snapshot.
    const double acc = fl.evaluate();
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

} // namespace
} // namespace autofl
