/** @file Experiment harness and oracle-search integration tests. */
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "harness/oracle_search.h"

namespace autofl {
namespace {

ExperimentConfig
fast_cfg()
{
    ExperimentConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.setting = ParamSetting::S3;
    cfg.variance = VarianceScenario::None;
    cfg.max_rounds = 10;
    cfg.target_accuracy = 2.0;  // Never reached: run all rounds.
    cfg.train_samples = 800;
    cfg.test_samples = 200;
    cfg.seed = 9;
    cfg.threads = 8;
    cfg.autofl_warmup_rounds = 5;
    return cfg;
}

TEST(Characterization, ProducesEnergyAndTimeWithoutTraining)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.policy = PolicyKind::FedAvgRandom;
    auto res = run_characterization(cfg, 12);
    EXPECT_EQ(res.rounds.size(), 12u);
    EXPECT_GT(res.total_energy_j, 0.0);
    EXPECT_GT(res.total_time_s, 0.0);
    EXPECT_GT(res.ppw_round(), 0.0);
    EXPECT_GT(res.ppw_local(), res.ppw_round());  // local excludes fleet idle
    // No training happened.
    EXPECT_EQ(res.final_accuracy, 0.0);
}

TEST(Characterization, DeterministicForSeed)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.policy = PolicyKind::Power;
    auto a = run_characterization(cfg, 8);
    auto b = run_characterization(cfg, 8);
    EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
    EXPECT_DOUBLE_EQ(a.total_time_s, b.total_time_s);
}

TEST(Characterization, PerformanceBeatsRandomOnRoundTime)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.policy = PolicyKind::FedAvgRandom;
    auto random = run_characterization(cfg, 16);
    cfg.policy = PolicyKind::Performance;
    auto perf = run_characterization(cfg, 16);
    EXPECT_LT(perf.avg_round_s(), random.avg_round_s());
}

TEST(RunExperiment, TrainsAndRecordsRounds)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.policy = PolicyKind::FedAvgRandom;
    auto res = run_experiment(cfg);
    EXPECT_EQ(res.rounds.size(), 10u);
    EXPECT_GT(res.final_accuracy, 0.12);  // Better than random guessing.
    // Accuracy is broadly increasing early in training.
    EXPECT_GT(res.rounds.back().accuracy, res.rounds.front().accuracy);
    EXPECT_GT(res.total_energy_j, 0.0);
}

TEST(RunExperiment, StopsAtTarget)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.policy = PolicyKind::FedAvgRandom;
    cfg.max_rounds = 40;
    cfg.target_accuracy = 0.30;
    auto res = run_experiment(cfg);
    ASSERT_TRUE(res.converged());
    EXPECT_LT(res.rounds_to_target, 40);
    EXPECT_EQ(res.rounds.size(), static_cast<size_t>(res.rounds_to_target));
    EXPECT_GT(res.energy_to_target_j, 0.0);
    EXPECT_GT(res.ppw_convergence(), 0.0);
}

TEST(RunExperiment, UnreachedTargetHasZeroConvergencePpw)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.policy = PolicyKind::FedAvgRandom;
    auto res = run_experiment(cfg);
    EXPECT_FALSE(res.converged());
    EXPECT_EQ(res.ppw_convergence(), 0.0);
}

TEST(RunExperiment, TierMixMatchesPolicy)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.policy = PolicyKind::Performance;
    auto res = run_experiment(cfg);
    auto mix = res.tier_mix();
    EXPECT_NEAR(mix[0], 1.0, 1e-9);  // All high-end.
    cfg.policy = PolicyKind::Power;
    res = run_experiment(cfg);
    mix = res.tier_mix();
    EXPECT_NEAR(mix[2], 1.0, 1e-9);  // All low-end.
}

TEST(RunExperiment, AutoFlRunsWithWarmup)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.policy = PolicyKind::AutoFl;
    auto res = run_experiment(cfg);
    EXPECT_EQ(res.policy_name, "AutoFL");
    EXPECT_EQ(res.rounds.size(), 10u);
    // The warmup must not contaminate measured metrics.
    EXPECT_GT(res.rounds.front().accuracy, 0.0);
    auto mix = res.action_mix();
    double total = 0.0;
    for (double m : mix)
        total += m;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(OracleSearch, ParticipantSearchPicksNonExtremeUnderNoVariance)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.train_samples = 0;  // Characterization uses realistic shard sizes.
    auto result = search_oracle_participant(cfg, 16);
    EXPECT_GT(result.ppw, 0.0);
    // Under no variance at S3, an interior (mixed or high-leaning)
    // composition wins; the Power extreme never does.
    EXPECT_NE(result.spec.cluster.label, "C7");
}

TEST(OracleSearch, FlSearchImprovesOnParticipant)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.train_samples = 0;
    auto part = search_oracle_participant(cfg, 16);
    auto fl = search_oracle_fl(cfg, part.spec, 16);
    EXPECT_GE(fl.ppw, part.ppw);
}

TEST(OracleSearch, InterferencePrefersHighEnd)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.train_samples = 0;
    cfg.variance = VarianceScenario::Interference;
    auto result = search_oracle_participant(cfg, 16);
    // Section 3.2: under interference the optimum swings to high-end.
    EXPECT_GE(result.spec.cluster.high, 15) << result.spec.cluster.label;
}

TEST(MixSimilarity, BoundsAndIdentity)
{
    std::array<double, 3> a{0.5, 0.3, 0.2};
    EXPECT_NEAR(mix_similarity(a, a), 1.0, 1e-12);
    std::array<double, 3> b{0.0, 0.0, 1.0};
    std::array<double, 3> c{1.0, 0.0, 0.0};
    EXPECT_NEAR(mix_similarity(b, c), 0.0, 1e-12);
}

TEST(Harness, PolicyKindNames)
{
    EXPECT_EQ(policy_kind_name(PolicyKind::OracleFl), "O_FL");
    EXPECT_EQ(policy_kind_name(PolicyKind::AutoFl), "AutoFL");
}

TEST(RunExperiment, SemiAsyncRuntimeTrainsAndReportsStaleness)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.policy = PolicyKind::FedAvgRandom;
    cfg.max_rounds = 6;
    cfg.sync_mode = SyncMode::SemiAsync;
    cfg.staleness_bound = 1;
    auto res = run_experiment(cfg);
    EXPECT_EQ(res.rounds.size(), 6u);
    EXPECT_GT(res.final_accuracy, 0.12);
    for (const auto &r : res.rounds) {
        EXPECT_GT(r.included, 0);
        EXPECT_LE(r.mean_staleness, cfg.staleness_bound);
    }
}

TEST(Harness, SyncModeSweepCoversEveryScenario)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.policy = PolicyKind::FedAvgRandom;
    cfg.max_rounds = 4;
    auto runs = run_sync_mode_sweep(
        cfg, {SyncModeScenario{SyncMode::Sync, 0},
              SyncModeScenario{SyncMode::SemiAsync, 1},
              SyncModeScenario{SyncMode::Async, 0}});
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0].policy_name, "FedAvg-Random/Sync");
    EXPECT_EQ(runs[1].policy_name, "FedAvg-Random/SemiAsync-1");
    EXPECT_EQ(runs[2].policy_name, "FedAvg-Random/Async");
    for (const auto &r : runs) {
        EXPECT_EQ(r.rounds.size(), 4u);
        EXPECT_GT(r.final_accuracy, 0.0);
    }
}

TEST(Harness, DefaultTargetsAreAttainable)
{
    for (Workload w : all_workloads()) {
        EXPECT_GT(default_target_accuracy(w), 0.0);
        EXPECT_LT(default_target_accuracy(w), 1.0);
    }
}

/**
 * Expect run_experiment(cfg) to reject the config with a message that
 * names the offending knob (actionable, not just "bad config").
 */
void
expect_rejected(const ExperimentConfig &cfg, const std::string &knob)
{
    try {
        run_experiment(cfg);
        FAIL() << "expected std::invalid_argument naming " << knob;
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(knob), std::string::npos)
            << "message does not name the knob: " << e.what();
    }
}

TEST(ConfigValidation, RejectsBadPipelineDepth)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.pipeline_depth = 0;
    expect_rejected(cfg, "pipeline_depth");
}

TEST(ConfigValidation, RejectsNegativeStalenessBound)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.staleness_bound = -1;
    expect_rejected(cfg, "staleness_bound");
}

TEST(ConfigValidation, RejectsBadEvalWorkers)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.eval_workers = 0;
    expect_rejected(cfg, "eval_workers");
}

TEST(ConfigValidation, RejectsZeroPsShards)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.ps_shards = 0;
    expect_rejected(cfg, "ps_shards");
}

TEST(ConfigValidation, RejectsBadServeConfig)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.serve.batch_size = 0;
    expect_rejected(cfg, "serve.batch_size");
    cfg = fast_cfg();
    cfg.serve.workers = 0;
    expect_rejected(cfg, "serve.workers");
    cfg = fast_cfg();
    cfg.serve.max_snapshot_lag = -1;
    expect_rejected(cfg, "serve.max_snapshot_lag");
    cfg = fast_cfg();
    cfg.serve.queue_depth = 0;
    expect_rejected(cfg, "serve.queue_depth");
    cfg = fast_cfg();
    cfg.serve.batch_timeout_us = -1;
    expect_rejected(cfg, "serve.batch_timeout_us");
}

TEST(ConfigValidation, RejectsBadSnapshotKnobs)
{
    ExperimentConfig cfg = fast_cfg();
    cfg.snapshot_dir = "ckpt";
    cfg.snapshot_every_epochs = 0;
    expect_rejected(cfg, "snapshot_every_epochs");

    // A cadence without a directory silently checkpoints nothing —
    // rejected so the misconfiguration is caught, not ignored.
    cfg = fast_cfg();
    cfg.snapshot_every_epochs = 4;
    expect_rejected(cfg, "snapshot_dir");
}

TEST(ConfigValidation, RejectsResumeCombinedWithCompression)
{
    // Error-feedback residuals are not persisted in artifacts, so a
    // resumed compressed run would silently diverge.
    ExperimentConfig cfg = fast_cfg();
    cfg.sync_mode = SyncMode::SemiAsync;
    cfg.staleness_bound = 0;
    cfg.compression.mode = Compression::Int8;
    cfg.resume_from = "ckpt/latest.snap";
    expect_rejected(cfg, "resume_from");
}

TEST(ConfigValidation, FlSystemCtorRejectsBadRuntimeKnobs)
{
    FlSystemConfig cfg;
    cfg.data.train_samples = 40;
    cfg.data.test_samples = 10;
    cfg.partition.num_devices = 4;
    cfg.ps.pipeline_depth = 0;
    try {
        FlSystem fl(cfg);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("pipeline_depth"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ConfigValidation, MessagesAreActionable)
{
    // The message carries the rejected value and what the knob means.
    ExperimentConfig cfg = fast_cfg();
    cfg.pipeline_depth = -3;
    try {
        run_experiment(cfg);
        FAIL();
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("got -3"), std::string::npos) << msg;
        EXPECT_NE(msg.find(">= 1"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace autofl
