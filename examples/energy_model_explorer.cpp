/**
 * @file
 * Energy-model explorer: inspect the per-tier power/performance models
 * (Equations 1-4 instantiated with Tables 2-3) that everything else in
 * the library is built on — per-target busy power across the DVFS
 * ladder, computation time/energy for one round of each workload, and
 * communication energy across signal strengths.
 */
#include <iostream>

#include "nn/models.h"
#include "sim/perf.h"
#include "sim/power.h"
#include "sim/scale.h"
#include "util/table.h"

using namespace autofl;

int
main()
{
    print_banner(std::cout, "Tier specifications (Tables 2-3)");
    TextTable spec_t;
    spec_t.set_header({"tier", "phone", "EC2", "CPU GFLOPS", "CPU train W",
                       "GPU train W", "V-F steps (CPU/GPU)"});
    for (Tier tier : {Tier::High, Tier::Mid, Tier::Low}) {
        const DeviceSpec &s = spec_for_tier(tier);
        spec_t.add_row({tier_label(tier), s.phone_model, s.ec2_instance,
                        TextTable::num(s.cpu_gflops, 1),
                        TextTable::num(s.cpu_train_w, 2),
                        TextTable::num(s.gpu_train_w, 2),
                        std::to_string(s.cpu_vf_steps) + "/" +
                            std::to_string(s.gpu_vf_steps)});
    }
    spec_t.render(std::cout);

    print_banner(std::cout, "Busy power across the DVFS ladder (Eq. 1-2)");
    TextTable power_t;
    power_t.set_header({"tier", "target", "P@lo (W)", "P@mid (W)",
                        "P@hi (W)"});
    for (Tier tier : {Tier::High, Tier::Mid, Tier::Low}) {
        const DeviceSpec &s = spec_for_tier(tier);
        for (ExecTarget target : {ExecTarget::Cpu, ExecTarget::Gpu}) {
            const DvfsLadder ladder = ladder_for(s, target);
            power_t.add_row(
                {tier_label(tier), target_label(target),
                 TextTable::num(busy_power_w(
                     s, target,
                     ladder.freq_frac_for_level(DvfsLevel::Low)), 2),
                 TextTable::num(busy_power_w(
                     s, target,
                     ladder.freq_frac_for_level(DvfsLevel::Mid)), 2),
                 TextTable::num(busy_power_w(
                     s, target,
                     ladder.freq_frac_for_level(DvfsLevel::High)), 2)});
        }
    }
    power_t.render(std::cout);

    print_banner(std::cout,
                 "One S3 round of local training per workload and tier "
                 "(CPU at max V-F, quiet device)");
    TextTable round_t;
    round_t.set_header({"workload", "tier", "compute (s)", "energy (J)",
                        "H/L time gap"});
    for (Workload w : all_workloads()) {
        const NnProfile prof = model_profile(w);
        ComputeProfile cp;
        cp.train_flops = 5.0 * 20 * prof.flops_per_sample * kTrainFlopFactor;
        cp.mem_bound_frac = prof.mem_bound_frac;
        cp.payload_bytes = prof.model_bytes;
        cp.batch_size = 16;
        DeviceRoundState quiet;
        quiet.bandwidth_mbps = 80.0;
        const double t_high = compute_time_s(spec_for_tier(Tier::High),
                                             ExecTarget::Cpu, 1.0, cp, quiet);
        for (Tier tier : {Tier::High, Tier::Mid, Tier::Low}) {
            const DeviceSpec &s = spec_for_tier(tier);
            const double t =
                compute_time_s(s, ExecTarget::Cpu, 1.0, cp, quiet);
            const double e = busy_power_w(s, ExecTarget::Cpu, 1.0) *
                (t - kRoundOverheadS) + overhead_power_w(s) * kRoundOverheadS;
            round_t.add_row({workload_name(w), tier_label(tier),
                             TextTable::num(t, 2), TextTable::num(e, 2),
                             tier == Tier::Low ?
                                 TextTable::num(t / t_high, 2) + "x" : ""});
        }
    }
    round_t.render(std::cout);

    print_banner(std::cout,
                 "Communication energy vs signal strength (Eq. 3, CNN "
                 "payload)");
    TextTable comm_t;
    comm_t.set_header({"bandwidth (Mbps)", "TX power (W)", "comm time (s)",
                       "comm energy (J)"});
    const double payload = model_profile(Workload::CnnMnist).model_bytes;
    for (double bw : {90.0, 60.0, 40.0, 20.0, 8.0}) {
        const double t = comm_time_s(payload, bw);
        comm_t.add_row({TextTable::num(bw, 0),
                        TextTable::num(NetworkModel::tx_power_w(bw), 2),
                        TextTable::num(t, 2),
                        TextTable::num(comm_energy(bw, t), 2)});
    }
    comm_t.render(std::cout);
    return 0;
}
