/**
 * @file
 * Heterogeneous-fleet scenario: characterize how the optimal cluster of
 * participants shifts with runtime variance, using the scheduling/energy
 * simulator directly (no NN training — runs in milliseconds).
 *
 * This is the Section 3 characterization workflow a systems researcher
 * would run before deploying an FL job: sweep the Table 4 tier
 * compositions under each variance scenario and find the per-scenario
 * oracle, including execution targets.
 */
#include <iostream>

#include "harness/oracle_search.h"
#include "util/table.h"

using namespace autofl;

int
main()
{
    std::cout << "Characterizing cluster compositions on the 200-device "
                 "fleet (CNN-MNIST, S3)\n";

    for (VarianceScenario v : {VarianceScenario::None,
                               VarianceScenario::Interference,
                               VarianceScenario::WeakNetwork,
                               VarianceScenario::Combined}) {
        ExperimentConfig cfg;
        cfg.workload = Workload::CnnMnist;
        cfg.setting = ParamSetting::S3;
        cfg.variance = v;
        cfg.seed = 7;

        print_banner(std::cout, variance_scenario_name(v));
        TextTable t;
        t.set_header({"cluster", "H/M/L", "PPW (GFLOP/J)", "round (s)",
                      "energy/round (J)"});
        for (const auto &[tmpl, res] : characterize_clusters(cfg)) {
            t.add_row({tmpl.label,
                       tmpl.random ? "random" :
                           std::to_string(tmpl.high) + "/" +
                               std::to_string(tmpl.mid) + "/" +
                               std::to_string(tmpl.low),
                       TextTable::num(res.ppw_round() / 1e9, 4),
                       TextTable::num(res.avg_round_s(), 2),
                       TextTable::num(res.total_energy_j /
                                          res.rounds.size(), 1)});
        }
        t.render(std::cout);

        auto part = search_oracle_participant(cfg);
        auto fl = search_oracle_fl(cfg, part.spec);
        auto show = [](const StaticExecSettings &e) {
            return target_label(e.target) + "@" + dvfs_label(e.dvfs);
        };
        std::cout << "O_participant: " << part.spec.cluster.label
                  << "   O_FL adds exec targets: H=" << show(fl.spec.exec.high)
                  << " M=" << show(fl.spec.exec.mid)
                  << " L=" << show(fl.spec.exec.low)
                  << "  (+" << TextTable::num(
                         (fl.ppw / part.ppw - 1.0) * 100.0, 1)
                  << "% PPW)\n";
    }
    return 0;
}
