/**
 * @file
 * Heterogeneous-fleet scenario: characterize how the optimal cluster of
 * participants shifts with runtime variance, using the scheduling/energy
 * simulator directly (no NN training — runs in milliseconds), then run
 * one real-training server-runtime sweep (Sync vs streaming SemiAsync
 * vs Async) on the variance scenario where stragglers bite hardest.
 *
 * This is the Section 3 characterization workflow a systems researcher
 * would run before deploying an FL job: sweep the Table 4 tier
 * compositions under each variance scenario and find the per-scenario
 * oracle, including execution targets — then check what the serving
 * runtime itself buys on that fleet.
 */
#include <iostream>

#include "harness/oracle_search.h"
#include "util/table.h"

using namespace autofl;

namespace {

/**
 * Real-training sweep over server runtimes on the Interference
 * scenario: the same small job under the synchronous barrier, the
 * streaming semi-async pipeline (depth 4), and fully async commits.
 * Uses a trimmed fleet and dataset so it finishes in seconds.
 */
void
run_runtime_sweep()
{
    ExperimentConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.setting = ParamSetting::S4;
    cfg.variance = VarianceScenario::Interference;
    cfg.policy = PolicyKind::FedAvgRandom;
    cfg.fleet_mix = {6, 10, 14};
    cfg.train_samples = 900;
    cfg.test_samples = 150;
    cfg.max_rounds = 6;
    cfg.threads = 8;
    cfg.pipeline_depth = 4;
    cfg.seed = 7;

    const std::vector<SyncModeScenario> scenarios = {
        {SyncMode::Sync, 0},
        {SyncMode::SemiAsync, 1},
        {SyncMode::Async, 0},
    };

    print_banner(std::cout,
                 "Server-runtime sweep (real training, Interference, "
                 "pipeline depth " + std::to_string(cfg.pipeline_depth) +
                     ")");
    TextTable t;
    t.set_header({"runtime", "final-acc(%)", "mean-staleness",
                  "window-staleness", "evicted", "included/round"});
    for (const auto &res : run_sync_mode_sweep(cfg, scenarios)) {
        double staleness = 0.0, window = 0.0;
        int evicted = 0, included = 0;
        for (const auto &r : res.rounds) {
            staleness += r.mean_staleness;
            window = r.window_staleness;  // Last round's window.
            evicted += r.evicted;
            included += r.included;
        }
        const double n = static_cast<double>(res.rounds.size());
        t.add_row({res.policy_name,
                   TextTable::num(res.final_accuracy * 100.0, 1),
                   TextTable::num(staleness / n, 2),
                   TextTable::num(window, 2),
                   std::to_string(evicted),
                   TextTable::num(included / n, 1)});
    }
    t.render(std::cout);
}

} // namespace

int
main()
{
    std::cout << "Characterizing cluster compositions on the 200-device "
                 "fleet (CNN-MNIST, S3)\n";

    for (VarianceScenario v : {VarianceScenario::None,
                               VarianceScenario::Interference,
                               VarianceScenario::WeakNetwork,
                               VarianceScenario::Combined}) {
        ExperimentConfig cfg;
        cfg.workload = Workload::CnnMnist;
        cfg.setting = ParamSetting::S3;
        cfg.variance = v;
        cfg.seed = 7;

        print_banner(std::cout, variance_scenario_name(v));
        TextTable t;
        t.set_header({"cluster", "H/M/L", "PPW (GFLOP/J)", "round (s)",
                      "energy/round (J)"});
        for (const auto &[tmpl, res] : characterize_clusters(cfg)) {
            t.add_row({tmpl.label,
                       tmpl.random ? "random" :
                           std::to_string(tmpl.high) + "/" +
                               std::to_string(tmpl.mid) + "/" +
                               std::to_string(tmpl.low),
                       TextTable::num(res.ppw_round() / 1e9, 4),
                       TextTable::num(res.avg_round_s(), 2),
                       TextTable::num(res.total_energy_j /
                                          res.rounds.size(), 1)});
        }
        t.render(std::cout);

        auto part = search_oracle_participant(cfg);
        auto fl = search_oracle_fl(cfg, part.spec);
        auto show = [](const StaticExecSettings &e) {
            return target_label(e.target) + "@" + dvfs_label(e.dvfs);
        };
        std::cout << "O_participant: " << part.spec.cluster.label
                  << "   O_FL adds exec targets: H=" << show(fl.spec.exec.high)
                  << " M=" << show(fl.spec.exec.mid)
                  << " L=" << show(fl.spec.exec.low)
                  << "  (+" << TextTable::num(
                         (fl.ppw / part.ppw - 1.0) * 100.0, 1)
                  << "% PPW)\n";
    }

    run_runtime_sweep();
    return 0;
}
