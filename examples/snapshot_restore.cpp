/**
 * @file
 * Crash-resume demo: the full persistence story across real process
 * boundaries. The same binary is every role — the parent spawns itself
 * as a training process and SIGKILLs it mid-run, then proves the
 * artifacts survived the crash whole, resumes training to the exact
 * bits the uninterrupted run produces, and finally spawns itself as a
 * serving process that answers predictions from the artifact alone
 * (no parameter server, no training stack).
 *
 * Phases (each a checked claim; exit 0 only if all hold):
 *   1. Reference: an uninterrupted pipelined run — final weights and
 *      probe predictions to beat.
 *   2. Crash: a child process trains the same job with per-round
 *      checkpoints; the parent SIGKILLs it mid-run. Every artifact
 *      left behind must parse Ok — temp + fsync + atomic rename means
 *      a crash at any instant leaves no torn file.
 *   3. Resume: a new system restores latest.snap and trains the
 *      remaining rounds; its final weights must be bit-identical to
 *      phase 1 (the SemiAsync(S=0) == Sync determinism contract,
 *      extended across a kill -9).
 *   4. Serve: a child process cold-starts from the final artifact via
 *      mmap and must return phase 1's exact predictions.
 *
 * Modes:
 *   (default)       Orchestrate all four phases.
 *   --train <dir>   Internal: train with checkpoints into <dir>.
 *   --serve <path>  Internal: mmap <path>, print probe predictions.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <iostream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "fl/system.h"
#include "serve/model_service.h"
#include "store/mapped_snapshot.h"
#include "store/snapshot.h"

using namespace autofl;

namespace {

constexpr uint64_t kRounds = 16;
constexpr uint64_t kSeed = 2021;
const std::vector<int> kProbe = {0, 3, 11, 27, 42, 63};

/** The one job every role constructs independently. */
FlSystemConfig
job_config()
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {8, 1, 4};
    cfg.data.train_samples = 192;
    cfg.data.test_samples = 64;
    cfg.partition.num_devices = 8;
    cfg.seed = kSeed;
    cfg.threads = 4;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.staleness_bound = 0;   // Single-batch rounds: bit-exact resume.
    cfg.ps.pipeline_depth = 3;
    return cfg;
}

/** Deterministic participants — a pure function of the round, so a
 *  resumed process replays the exact selection schedule. */
std::vector<int>
participants(uint64_t round)
{
    std::vector<int> ids;
    for (int i = 0; i < 4; ++i)
        ids.push_back(static_cast<int>(
            (round * 3 + static_cast<uint64_t>(i) * 2 + 1) % 8));
    return ids;
}

void
run_rounds(FlSystem &fl, uint64_t first, uint64_t last)
{
    for (uint64_t r = first; r <= last; ++r)
        fl.run_round(participants(r), r);
    fl.drain();
}

bool
file_parses_ok(const std::string &path)
{
    store::SnapshotData data;
    return store::read_snapshot_file(path, &data) ==
        store::SnapshotStatus::Ok;
}

/** Child role: train with per-round checkpoints until SIGKILLed. */
int
run_train_child(const std::string &dir)
{
    FlSystemConfig cfg = job_config();
    cfg.ps.snapshot_dir = dir;
    // Slow the rounds so the parent's kill lands mid-run on any box.
    cfg.ps.sim_device_latency_s = 0.03;
    FlSystem fl(cfg);
    run_rounds(fl, 0, kRounds - 1);
    fl.checkpoint_writer()->flush();
    return 0;
}

/** Child role: serve predictions from the artifact alone. */
int
run_serve_child(const std::string &path)
{
    store::SnapshotStatus st;
    const auto snap = store::MappedSnapshot::open(path, &st);
    if (!snap) {
        std::cerr << "serve: " << store::snapshot_status_name(st) << ": "
                  << path << "\n";
        return 1;
    }
    const FlSystemConfig cfg = job_config();
    ModelService serve(cfg.workload);
    serve.attach_artifact(snap);
    const Dataset test = make_dataset(cfg.workload, cfg.data).test;
    const std::vector<int> got =
        serve.classify(serve.acquire(), test, kProbe);
    std::ostringstream out;  // One line the parent parses.
    out << "predictions:";
    for (int p : got)
        out << " " << p;
    std::cout << out.str() << "\n";
    return 0;
}

bool
check(bool ok, const std::string &what)
{
    std::cout << (ok ? "  [ok] " : "  [FAIL] ") << what << "\n";
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string self = argv[0];
    if (argc > 2 && std::string(argv[1]) == "--train")
        return run_train_child(argv[2]);
    if (argc > 2 && std::string(argv[1]) == "--serve")
        return run_serve_child(argv[2]);

    bool ok = true;
    const std::string dir = "snapshot_restore_artifacts";
    [[maybe_unused]] int rc =
        std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());

    // ---- Phase 1: the uninterrupted reference run.
    std::cout << "phase 1: uninterrupted reference run\n";
    FlSystemConfig ref_cfg = job_config();
    FlSystem ref(ref_cfg);
    run_rounds(ref, 0, kRounds - 1);
    const std::vector<float> want_weights = ref.server().global_weights();
    const std::vector<int> want_preds =
        ref.serve().classify(ref.serve().acquire(), ref.test_set(), kProbe);

    // ---- Phase 2: train in a child, SIGKILL it mid-run.
    std::cout << "phase 2: train in a child process, kill -9 mid-run\n";
    const pid_t child = fork();
    if (child == 0) {
        execl(self.c_str(), self.c_str(), "--train", dir.c_str(),
              static_cast<char *>(nullptr));
        _exit(127);
    }
    // Kill as soon as round 1's artifact is complete — early enough
    // that most of the run is still ahead, late enough that the
    // resumed process has real state to restore.
    const std::string r1 = dir + "/model-r1.snap";
    for (int i = 0; i < 5000 && !file_parses_ok(r1); ++i)
        usleep(2000);
    ok &= check(file_parses_ok(r1), "child produced a complete artifact");
    kill(child, SIGKILL);
    int status = 0;
    waitpid(child, &status, 0);
    ok &= check(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
                "child died by SIGKILL (mid-run, not a clean exit)");

    // Every artifact the kill left behind must be whole: the writer
    // never renames a file it has not fully written and fsynced.
    int artifacts = 0;
    if (DIR *d = opendir(dir.c_str())) {
        while (dirent *e = readdir(d)) {
            const std::string name = e->d_name;
            if (name.size() > 5 &&
                name.compare(name.size() - 5, 5, ".snap") == 0) {
                ++artifacts;
                ok &= check(file_parses_ok(dir + "/" + name),
                            name + " parses Ok after the crash");
            }
        }
        closedir(d);
    }
    ok &= check(artifacts >= 2, "crash left artifacts behind (" +
                std::to_string(artifacts) + ")");

    // ---- Phase 3: resume and land on the reference bits.
    std::cout << "phase 3: resume from latest.snap, finish the run\n";
    store::SnapshotData latest;
    ok &= check(store::read_snapshot_file(dir + "/latest.snap", &latest) ==
                    store::SnapshotStatus::Ok,
                "latest.snap names a complete artifact");
    FlSystemConfig res_cfg = job_config();
    res_cfg.ps.resume_from = dir + "/latest.snap";
    res_cfg.ps.snapshot_dir = dir;  // Re-checkpoint: phase 4's artifact.
    FlSystem resumed(res_cfg);
    ok &= check(resumed.resumed() &&
                    resumed.resume_round() == latest.meta.round,
                "resumed at the artifact's round (" +
                    std::to_string(latest.meta.round) + ")");
    if (resumed.resume_round() + 1 < kRounds)
        run_rounds(resumed, resumed.resume_round() + 1, kRounds - 1);
    resumed.checkpoint_writer()->flush();
    ok &= check(resumed.server().global_weights() == want_weights,
                "resumed final weights bit-identical to the "
                "uninterrupted run");

    // ---- Phase 4: cold-start serving from the artifact alone.
    std::cout << "phase 4: serve from the final artifact in a fresh "
                 "process\n";
    const std::string cmd = self + " --serve " + dir + "/latest.snap";
    std::string line;
    if (FILE *p = popen(cmd.c_str(), "r")) {
        char buf[256];
        while (fgets(buf, sizeof buf, p))
            line += buf;
        const int prc = pclose(p);
        ok &= check(prc == 0, "serve child exited 0");
    } else {
        ok = false;
    }
    std::ostringstream want_line;
    want_line << "predictions:";
    for (int p : want_preds)
        want_line << " " << p;
    want_line << "\n";
    ok &= check(line == want_line.str(),
                "served predictions match the reference run");

    std::cout << (ok ? "all checks passed\n" : "CHECKS FAILED\n");
    return ok ? 0 : 1;
}
