/**
 * @file
 * Distributed parameter-server demo: one server process plus four
 * worker processes speaking the src/net/ wire protocol over a Unix
 * domain socket. The same binary is both sides — the parent spawns
 * itself with --worker (via FlCluster's spawn_cmd), each worker
 * rebuilds its shards deterministically from the shared config and
 * serves rounds until Shutdown.
 *
 * Modes:
 *   (default)  Clean run. Trains the same job in-process and over the
 *              socket cluster, then checks the cluster lands in the
 *              same accuracy band and every worker exits 0.
 *   --chaos    Fault injection: SIGKILLs a worker mid-round and checks
 *              the round completes with its jobs logged as staleness
 *              evictions — a dead client costs one round's
 *              contribution, never a hang.
 *   --compression {none,fp16,int8,topk}
 *              Push-path compression demo: workers ship encoded deltas
 *              under error feedback (AUTOFL_NET_COMPRESSION carries the
 *              codec to the worker processes). Prints push bytes/round
 *              and final accuracy, checked against an in-process run of
 *              the same compressed job.
 *   --worker   Internal: run as a worker node (AUTOFL_NET_ADDR set by
 *              the parent).
 *
 * Exits 0 on success, 1 on any violated check — CI runs both modes.
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "fl/fl_cluster.h"
#include "fl/system.h"
#include "ps/compression.h"
#include "util/table.h"

using namespace autofl;

namespace {

constexpr int kWorkers = 4;
constexpr int kRounds = 4;
const std::vector<int> kRoundIds = {0, 2, 4, 6, 8, 10};

/**
 * One config both sides construct independently — the worker processes
 * never receive it over the wire, they rebuild it (and from it, their
 * datasets) from this function alone.
 */
FlSystemConfig
base_config()
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, 6};
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 240;
    cfg.data.test_samples = 80;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = 12;
    cfg.seed = 2026;
    cfg.threads = 2;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.staleness_bound = 0;  // Bit-identical to the Sync barrier.
    cfg.ps.shards = 5;
    cfg.ps.net.workers = kWorkers;
    cfg.ps.net.heartbeat_interval_ms = 100;
    cfg.ps.net.heartbeat_timeout_ms = 1000;
    cfg.ps.net.round_timeout_ms = 60000;
    return cfg;
}

std::string
socket_address()
{
    return "unix:/tmp/autofl_ps_cluster_" + std::to_string(::getpid()) +
        ".sock";
}

int
check(bool ok, const std::string &what)
{
    std::cout << (ok ? "  [ok] " : "  [FAIL] ") << what << "\n";
    return ok ? 0 : 1;
}

int
run_clean(const std::string &self)
{
    std::cout << "ps_cluster: 1 server + " << kWorkers
              << " worker processes over a unix socket\n\n";

    // Reference: the identical job, entirely in-process and synchronous.
    FlSystemConfig ref_cfg = base_config();
    ref_cfg.ps.mode = SyncMode::Sync;
    ref_cfg.ps.net = NetConfig{};
    FlSystem ref(ref_cfg);
    for (uint64_t r = 0; r < kRounds; ++r)
        ref.run_round(kRoundIds, r);
    const double ref_acc = ref.evaluate();

    FlSystemConfig cfg = base_config();
    cfg.ps.net.listen = socket_address();
    cfg.ps.net.spawn_cmd = self + " --worker";
    FlSystem fl(cfg);

    for (uint64_t r = 0; r < kRounds; ++r) {
        const PsRoundStats stats = fl.run_round(kRoundIds, r);
        std::cout << "round " << r << ": applied " << stats.applied << "/"
                  << kRoundIds.size() << ", evicted " << stats.evicted
                  << ", acc " << TextTable::num(fl.evaluate() * 100, 1)
                  << "%\n";
    }
    const double acc = fl.evaluate();
    fl.cluster()->shutdown();

    int failures = 0;
    std::cout << "\nin-process acc " << TextTable::num(ref_acc * 100, 1)
              << "%, cluster acc " << TextTable::num(acc * 100, 1) << "%\n";
    failures += check(std::fabs(acc - ref_acc) <= 0.05,
                      "socket training lands in the in-process accuracy "
                      "band");
    failures += check(fl.cluster()->server().dead_evictions() == 0,
                      "no spurious evictions in a healthy cluster");

    const auto &exits = fl.cluster()->worker_exits();
    failures += check(exits.size() == kWorkers, "every worker reaped");
    for (const auto &e : exits) {
        failures += check(e.exited && e.exit_code == 0 && !e.forced,
                          "worker pid " + std::to_string(e.pid) +
                              " exited clean");
    }
    return failures == 0 ? 0 : 1;
}

int
run_compressed(const std::string &self, Compression mode)
{
    std::cout << "ps_cluster --compression " << compression_name(mode)
              << ": encoded client deltas over the socket cluster\n\n";

    // Reference: the identical compressed job, entirely in-process
    // (compression requires the ps runtime, so the reference stays
    // SemiAsync S=0 rather than Sync).
    FlSystemConfig ref_cfg = base_config();
    ref_cfg.ps.net = NetConfig{};
    ref_cfg.ps.compression.mode = mode;
    FlSystem ref(ref_cfg);
    for (uint64_t r = 0; r < kRounds; ++r)
        ref.run_round(kRoundIds, r);
    const double ref_acc = ref.evaluate();

    FlSystemConfig cfg = base_config();
    cfg.ps.net.listen = socket_address();
    cfg.ps.net.spawn_cmd = self + " --worker";
    cfg.ps.compression.mode = mode;
    FlSystem fl(cfg);
    for (uint64_t r = 0; r < kRounds; ++r)
        fl.run_round(kRoundIds, r);
    const double acc = fl.evaluate();
    const uint64_t push_bytes = fl.cluster()->server().push_bytes_received();
    const double per_round = static_cast<double>(push_bytes) / kRounds;
    const double raw_per_round = static_cast<double>(
        kRoundIds.size() * 4 * fl.server().global_weights().size());
    fl.cluster()->shutdown();

    std::cout << "push traffic: " << TextTable::num(per_round / 1e3, 1)
              << " KB/round (raw f32 would be "
              << TextTable::num(raw_per_round / 1e3, 1) << " KB/round, "
              << TextTable::num(raw_per_round / per_round, 2) << "x)\n"
              << "final accuracy: " << TextTable::num(acc * 100, 1)
              << "% (in-process " << TextTable::num(ref_acc * 100, 1)
              << "%)\n\n";

    int failures = 0;
    failures += check(std::fabs(acc - ref_acc) <= 0.05,
                      "compressed socket training lands in the "
                      "in-process accuracy band");
    failures += check(mode == Compression::None ||
                          per_round < raw_per_round,
                      "encoded deltas cost less wire than raw pushes");
    failures += check(fl.cluster()->server().dead_evictions() == 0,
                      "no spurious evictions in a healthy cluster");
    const auto &exits = fl.cluster()->worker_exits();
    failures += check(exits.size() == kWorkers, "every worker reaped");
    for (const auto &e : exits) {
        failures += check(e.exited && e.exit_code == 0 && !e.forced,
                          "worker pid " + std::to_string(e.pid) +
                              " exited clean");
    }
    return failures == 0 ? 0 : 1;
}

int
run_chaos(const std::string &self)
{
    std::cout << "ps_cluster --chaos: SIGKILL a worker mid-round\n\n";

    FlSystemConfig cfg = base_config();
    cfg.ps.net.listen = socket_address();
    cfg.ps.net.spawn_cmd = self + " --worker";
    // Simulated device latency stretches the round so the kill lands
    // mid-flight (slowest device class ~300 ms/job, fastest ~100 ms,
    // kill at 60 ms — every worker is still on its first job), and
    // tighter heartbeats bound the detection delay.
    cfg.ps.sim_device_latency_s = 0.2;
    cfg.ps.net.heartbeat_interval_ms = 50;
    cfg.ps.net.heartbeat_timeout_ms = 500;
    FlSystem fl(cfg);

    const PsRoundStats warm = fl.run_round(kRoundIds, 0);
    int failures = 0;
    failures += check(warm.evicted == 0 &&
                          warm.applied == static_cast<int>(kRoundIds.size()),
                      "warmup round is clean");

    // The assassin: kill worker 0 while round 1's jobs are in flight.
    std::thread assassin([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        fl.cluster()->processes()->kill_worker(0, SIGKILL);
    });
    const PsRoundStats chaos = fl.run_round(kRoundIds, 1);
    assassin.join();
    std::cout << "chaos round: applied " << chaos.applied << ", evicted "
              << chaos.evicted << "\n";
    failures += check(chaos.evicted > 0,
                      "killed worker's in-flight jobs were evicted");
    failures += check(chaos.applied + chaos.evicted ==
                          static_cast<int>(kRoundIds.size()),
                      "every job accounted for: applied + evicted == "
                      "assigned");
    failures +=
        check(fl.cluster()->server().postoffice().alive_count() ==
                  kWorkers - 1,
              "membership shrank to the survivors");

    // Life goes on: the next round routes around the corpse.
    const PsRoundStats after = fl.run_round(kRoundIds, 2);
    failures += check(after.evicted == 0 &&
                          after.applied ==
                              static_cast<int>(kRoundIds.size()),
                      "next round re-routes cleanly to survivors");
    failures += check(fl.evaluate() > 0.2,
                      "the model kept training through the failure");

    fl.cluster()->shutdown();
    const auto &exits = fl.cluster()->worker_exits();
    int sigkilled = 0, clean = 0;
    for (const auto &e : exits) {
        if (!e.exited && e.term_signal == SIGKILL && !e.forced)
            ++sigkilled;
        else if (e.exited && e.exit_code == 0 && !e.forced)
            ++clean;
    }
    failures += check(sigkilled == 1 && clean == kWorkers - 1,
                      "exactly the murdered worker died by signal; the "
                      "rest exited clean");
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string self = argv[0];
    const bool worker = argc > 1 && std::string(argv[1]) == "--worker";
    const bool chaos = argc > 1 && std::string(argv[1]) == "--chaos";
    const bool compressed =
        argc > 1 && std::string(argv[1]) == "--compression";

    if (worker) {
        const char *addr = std::getenv("AUTOFL_NET_ADDR");
        if (!addr) {
            std::cerr << "--worker requires AUTOFL_NET_ADDR\n";
            return 1;
        }
        FlSystemConfig cfg = base_config();
        // The chaos parent tightens heartbeats; mirror it so a wedged
        // worker is detected on the parent's schedule either way.
        if (std::getenv("AUTOFL_NET_CHAOS")) {
            cfg.ps.sim_device_latency_s = 0.2;
            cfg.ps.net.heartbeat_interval_ms = 50;
            cfg.ps.net.heartbeat_timeout_ms = 500;
        }
        // The compressed parent carries the codec in the environment;
        // workers encode, so both sides must agree on it.
        if (const char *codec = std::getenv("AUTOFL_NET_COMPRESSION")) {
            if (!parse_compression(codec, &cfg.ps.compression.mode)) {
                std::cerr << "bad AUTOFL_NET_COMPRESSION: " << codec
                          << "\n";
                return 1;
            }
        }
        return run_cluster_worker(cfg, addr);
    }
    if (chaos) {
        ::setenv("AUTOFL_NET_CHAOS", "1", 1);
        return run_chaos(self);
    }
    if (compressed) {
        Compression mode = Compression::None;
        if (argc < 3 || !parse_compression(argv[2], &mode)) {
            std::cerr << "--compression requires one of: none, fp16, "
                         "int8, topk\n";
            return 1;
        }
        ::setenv("AUTOFL_NET_COMPRESSION", compression_name(mode).c_str(),
                 1);
        return run_compressed(self, mode);
    }
    return run_clean(self);
}
