/**
 * @file
 * Data-heterogeneity study: partition the synthetic MNIST dataset at
 * increasing non-IID levels, inspect the resulting per-device class
 * coverage, and train the FL job under each to watch convergence slow
 * down (the Section 3.3 / Figure 6 experiment as a library user would
 * script it).
 */
#include <iostream>

#include "harness/experiment.h"
#include "util/table.h"

using namespace autofl;

int
main()
{
    // Part 1: what Dirichlet(0.1) shards actually look like.
    print_banner(std::cout,
                 "Per-device class coverage by distribution (200 shards)");
    SyntheticConfig scfg;
    scfg.train_samples = 4000;
    auto split = make_synthetic_mnist(scfg);
    TextTable coverage;
    coverage.set_header({"distribution", "mean classes/device",
                         "devices with <3 classes"});
    for (DataDistribution d : {DataDistribution::IdealIid,
                               DataDistribution::NonIid50,
                               DataDistribution::NonIid75,
                               DataDistribution::NonIid100}) {
        PartitionConfig pcfg;
        pcfg.distribution = d;
        auto part = partition_dataset(split.train, pcfg);
        double mean = 0.0;
        int sparse = 0;
        for (int c : part.classes_per_device) {
            mean += c;
            if (c < 3)
                ++sparse;
        }
        mean /= static_cast<double>(part.classes_per_device.size());
        coverage.add_row({data_distribution_name(d),
                          TextTable::num(mean, 1), std::to_string(sparse)});
    }
    coverage.render(std::cout);

    // Part 2: convergence under each distribution with random selection.
    print_banner(std::cout,
                 "Convergence of FedAvg-Random vs AutoFL by distribution "
                 "(CNN-MNIST, S3)");
    TextTable conv;
    conv.set_header({"distribution", "policy", "rounds-to-target",
                     "final acc (%)", "energy-to-target (J)"});
    for (DataDistribution d : {DataDistribution::IdealIid,
                               DataDistribution::NonIid75}) {
        for (PolicyKind kind : {PolicyKind::FedAvgRandom,
                                PolicyKind::AutoFl}) {
            ExperimentConfig cfg;
            cfg.workload = Workload::CnnMnist;
            cfg.setting = ParamSetting::S3;
            cfg.distribution = d;
            cfg.policy = kind;
            cfg.max_rounds = 60;
            cfg.seed = 5;
            auto res = run_experiment(cfg);
            conv.add_row({data_distribution_name(d),
                          policy_kind_name(kind),
                          res.converged() ?
                              std::to_string(res.rounds_to_target) :
                              "no-conv",
                          TextTable::num(res.final_accuracy * 100, 1),
                          res.converged() ?
                              TextTable::num(res.energy_to_target_j, 0) :
                              "-"});
        }
    }
    conv.render(std::cout);
    return 0;
}
