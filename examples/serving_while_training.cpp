/**
 * @file
 * Serving-while-training scenario: query the ModelService from a
 * serving thread while a pipelined SemiAsync job streams striped
 * commit waves into the same store, then report accuracy against
 * snapshot lag.
 *
 * This is the production shape the serving plane exists for — AutoFL's
 * fleet consumes the global model continuously, it does not wait for
 * training to finish. The serving thread acquires refcounted snapshot
 * handles (cfg.serve.max_snapshot_lag bounds how stale a cached handle
 * may get), scores a fixed probe set through the batched inference
 * engine, and records how far behind the training frontier each answer
 * was. Alongside it, a pool of online clients fires single-sample
 * classification queries through ModelService::submit() — the
 * dynamic-batching entry point — and the run ends with the batcher's
 * coalescing/shed accounting.
 */
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "fl/system.h"
#include "ps/ps_server.h"
#include "serve/model_service.h"
#include "util/table.h"

using namespace autofl;

namespace {

struct Query
{
    uint64_t epoch = 0;     ///< Snapshot version that answered.
    uint64_t frontier = 0;  ///< Latest epoch at query time.
    double accuracy = 0.0;
};

} // namespace

int
main()
{
    constexpr int kDevices = 10;
    constexpr int kRounds = 12;

    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {16, 1, kDevices};
    cfg.hyper.lr = 0.05;
    cfg.data.train_samples = 600;
    cfg.data.test_samples = 150;
    cfg.data.noise = 0.6;
    cfg.partition.num_devices = kDevices;
    cfg.seed = 7;
    cfg.threads = 4;
    cfg.ps.mode = SyncMode::SemiAsync;
    cfg.ps.staleness_bound = 1;
    cfg.ps.pipeline_depth = 4;
    cfg.ps.sim_device_latency_s = 0.03;
    cfg.serve.max_snapshot_lag = 1;  // Serve at most one epoch stale.
    FlSystem fl(cfg);
    ModelService &serve = fl.serve();

    std::cout << "Pipelined SemiAsync training (" << kRounds
              << " rounds, depth " << cfg.ps.pipeline_depth
              << ") with a concurrent serving thread\n"
              << "serve: batch " << serve.config().batch_size
              << ", max snapshot lag " << serve.config().max_snapshot_lag
              << "\n\n";

    std::vector<Query> queries;
    std::mutex qmu;
    std::atomic<bool> stop{false};

    // Online clients: single-sample classification through the dynamic
    // batcher. Concurrent submissions coalesce into shared engine
    // batches while the eval thread and training share the same slots.
    constexpr int kClientThreads = 3;
    std::atomic<int> answered{0};
    std::vector<std::thread> clients;
    clients.reserve(kClientThreads);
    for (int c = 0; c < kClientThreads; ++c) {
        clients.emplace_back([&, c] {
            int i = c;
            while (!stop.load(std::memory_order_acquire)) {
                const int sample =
                    i % static_cast<int>(fl.test_set().size());
                const InferenceReply r = serve.query(
                    fl.test_set().batch_x({sample}), true);
                if (r.ok())
                    answered.fetch_add(1, std::memory_order_relaxed);
                i += kClientThreads;
            }
        });
    }

    std::thread server([&] {
        SnapshotHandle h;
        while (!stop.load(std::memory_order_acquire)) {
            serve.refresh(h);
            Query q;
            q.epoch = h.epoch();
            q.frontier = serve.latest_epoch();
            q.accuracy = serve.evaluate(h, fl.test_set(), 1).accuracy;
            {
                std::lock_guard<std::mutex> lk(qmu);
                queries.push_back(q);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(15));
        }
    });

    std::vector<int> ids(kDevices);
    for (int d = 0; d < kDevices; ++d)
        ids[static_cast<size_t>(d)] = d;
    std::mutex rmu;
    std::vector<PsRoundResult> rounds;
    for (int r = 0; r < kRounds; ++r) {
        fl.submit_round(ids, static_cast<uint64_t>(r),
                        [&](const PsRoundResult &res) {
                            std::lock_guard<std::mutex> lk(rmu);
                            rounds.push_back(res);
                        });
    }
    fl.drain();
    stop.store(true, std::memory_order_release);
    server.join();
    for (auto &t : clients)
        t.join();

    print_banner(std::cout, "Training rounds (scored by the eval workers)");
    TextTable rt;
    rt.set_header({"round", "final epoch", "accuracy(%)"});
    for (const auto &res : rounds) {
        rt.add_row({std::to_string(res.round),
                    std::to_string(res.final_epoch),
                    TextTable::num(res.accuracy * 100.0, 1)});
    }
    rt.render(std::cout);

    print_banner(std::cout, "Serving-thread queries: accuracy vs lag");
    TextTable qt;
    qt.set_header({"query", "epoch", "frontier", "lag", "accuracy(%)"});
    double lag_sum = 0.0;
    for (size_t i = 0; i < queries.size(); ++i) {
        const Query &q = queries[i];
        const uint64_t lag = q.frontier - q.epoch;
        lag_sum += static_cast<double>(lag);
        qt.add_row({std::to_string(i), std::to_string(q.epoch),
                    std::to_string(q.frontier), std::to_string(lag),
                    TextTable::num(q.accuracy * 100.0, 1)});
    }
    qt.render(std::cout);

    if (!queries.empty()) {
        std::cout << "served " << queries.size()
                  << " queries while training; accuracy "
                  << TextTable::num(queries.front().accuracy * 100.0, 1)
                  << "% -> "
                  << TextTable::num(queries.back().accuracy * 100.0, 1)
                  << "%, mean snapshot lag "
                  << TextTable::num(lag_sum / queries.size(), 2)
                  << " epochs (bound "
                  << serve.config().max_snapshot_lag << ")\n";
    }

    const ServeStats st = serve.serving_stats();
    std::cout << "online clients: " << answered.load()
              << " classifications through the dynamic batcher ("
              << st.batches << " coalesced batches, mean "
              << TextTable::num(st.mean_batch_rows(), 2)
              << " samples/batch, " << st.shed << " shed)\n";
    return 0;
}
