/**
 * @file
 * Multi-model serving scenario: train two models into one model
 * registry, then cold-start a ServingGateway from the registry
 * directory alone — no training stack — and serve both concurrently
 * under asymmetric load with per-request SLOs.
 *
 * This is the production shape the registry exists for. Training
 * publishes every checkpoint as a registry version the moment its
 * rename lands ("<registry>/<model>/model-r<N>.snap" + MANIFEST); a
 * serving process later enumerates the registry, mmaps the artifacts
 * (pages shared read-only across processes), rebuilds each
 * architecture from its manifest workload line, and serves all models
 * behind one weighted dispatcher pool. The load phase drives model B
 * far past the pool's capacity while model A receives a light trickle
 * with deadlines: B's overload is shed typed (queue-full sheds plus
 * DeadlineExceeded for hopeless deadlines) while A keeps its
 * guaranteed slot share and completes everything.
 */
#include <atomic>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "fl/system.h"
#include "serve/serving_gateway.h"
#include "store/model_registry.h"
#include "util/table.h"

using namespace autofl;

namespace {

/** Train one small job, publishing checkpoints into the registry. */
void
train_into_registry(const std::string &registry_dir,
                    const std::string &name, uint64_t seed, int rounds)
{
    FlSystemConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.params = {8, 1, 4};
    cfg.data.train_samples = 192;
    cfg.data.test_samples = 64;
    cfg.partition.num_devices = 8;
    cfg.threads = 4;
    cfg.seed = seed;
    cfg.serve.registry_dir = registry_dir;
    cfg.serve.model_name = name;
    cfg.ps.snapshot_keep_last = 0;  // Keep every round as a version.

    FlSystem fl(cfg);
    std::vector<int> ids = {0, 1, 2, 3};
    for (int r = 0; r < rounds; ++r)
        fl.run_round(ids, static_cast<uint64_t>(r));
    fl.drain();
    fl.checkpoint_writer()->flush();
    std::cout << "trained '" << name << "' (" << rounds
              << " rounds) -> " << registry_dir << "/" << name << "\n";
}

} // namespace

int
main()
{
    namespace fs = std::filesystem;
    const std::string registry_dir =
        (fs::temp_directory_path() / "autofl_example_registry").string();
    std::error_code ec;
    fs::remove_all(registry_dir, ec);

    // ---- phase 1: two training jobs publish into one registry.
    print_banner(std::cout, "Training two models into the registry");
    train_into_registry(registry_dir, "mnist-a", 11, 3);
    train_into_registry(registry_dir, "mnist-b", 22, 3);

    // ---- phase 2: a cold process enumerates and serves the registry.
    print_banner(std::cout, "Registry cold start");
    store::ModelRegistry registry(registry_dir);
    std::vector<store::RegistryModel> catalog;
    if (registry.scan(&catalog) != store::RegistryStatus::Ok) {
        std::cerr << "registry scan failed\n";
        return 1;
    }
    TextTable ct;
    ct.set_header({"model", "workload", "versions", "newest"});
    for (const auto &m : catalog) {
        std::string versions;
        for (uint64_t v : m.versions)
            versions += (versions.empty() ? "" : ",") + std::to_string(v);
        ct.add_row({m.name, m.workload, versions,
                    std::to_string(m.newest())});
    }
    ct.render(std::cout);

    ServeConfig base;
    base.workers = 2;      // Shared dispatcher pool.
    base.batch_size = 16;
    base.queue_depth = 64;
    base.registry_dir = registry_dir;
    base.default_deadline_us = 200000;  // 200 ms SLO on every request.
    ServingGateway gw(base);
    std::vector<std::pair<std::string, store::RegistryStatus>> failed;
    if (gw.load_registry(&failed) != store::RegistryStatus::Ok ||
        !failed.empty()) {
        for (const auto &f : failed)
            std::cerr << "load failed: " << f.first << ": "
                      << store::registry_status_name(f.second) << "\n";
        return 1;
    }
    gw.start();
    std::cout << "serving " << gw.models().size()
              << " models from mmap'd artifacts (no training stack):";
    for (const auto &key : gw.models())
        std::cout << " " << key << "@" << gw.version(key);
    std::cout << "\n";

    // ---- phase 3: asymmetric load. B floods the pool; A trickles.
    const Dataset probe = [] {
        SyntheticConfig dcfg;
        dcfg.train_samples = 16;
        dcfg.test_samples = 32;
        dcfg.seed = 5;
        return make_dataset(Workload::CnnMnist, dcfg).test;
    }();

    constexpr auto kLoadWindow = std::chrono::milliseconds(400);
    std::atomic<bool> stop{false};
    std::atomic<int> b_ok{0}, b_rejected{0};
    std::thread flood([&] {
        // Overload: keep a deep in-flight window against B so its
        // queue stays saturated for the whole measurement.
        std::vector<std::future<InferenceReply>> inflight;
        int i = 0;
        while (!stop.load(std::memory_order_acquire)) {
            inflight.push_back(
                gw.submit("mnist-b", probe.batch_x({i++ % 32})));
            if (inflight.size() >= 128) {
                for (auto &f : inflight)
                    (f.get().ok() ? b_ok : b_rejected).fetch_add(1);
                inflight.clear();
            }
        }
        for (auto &f : inflight)
            (f.get().ok() ? b_ok : b_rejected).fetch_add(1);
    });

    int a_ok = 0, a_total = 0;
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - t0 < kLoadWindow) {
        const InferenceReply r =
            gw.query("mnist-a", probe.batch_x({a_total % 32}), true);
        ++a_total;
        a_ok += r.ok() ? 1 : 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true, std::memory_order_release);
    flood.join();

    // ---- results: per-model accounting out of one shared pool.
    print_banner(std::cout, "Per-model serving stats (shared slot pool)");
    TextTable st;
    st.set_header({"model", "submitted", "admitted", "completed", "shed",
                   "ddl-shed", "mean batch"});
    for (const auto &key : gw.models()) {
        const ServeStats s = gw.stats(key);
        st.add_row({key, std::to_string(s.submitted),
                    std::to_string(s.admitted),
                    std::to_string(s.completed), std::to_string(s.shed),
                    std::to_string(s.deadline_shed),
                    TextTable::num(s.mean_batch_rows(), 2)});
    }
    st.render(std::cout);

    const ServeStats sa = gw.stats("mnist-a");
    const ServeStats sb = gw.stats("mnist-b");
    std::cout << "A (nominal): " << a_ok << "/" << a_total
              << " served under the overloaded neighbor\n"
              << "B (overload): " << b_ok.load() << " served, "
              << b_rejected.load()
              << " typed rejections (queue sheds + deadline sheds)\n";

    gw.stop_serving();
    fs::remove_all(registry_dir, ec);

    // The isolation contract: nominal A is never shed; B's overload
    // was shed typed instead of building an unbounded backlog.
    const bool a_clean = a_ok == a_total && sa.shed == 0;
    const bool b_bounded = sb.shed + sb.deadline_shed > 0;
    if (!a_clean || !b_bounded) {
        std::cerr << "FAIL: isolation contract violated\n";
        return 1;
    }
    std::cout << "OK: A untouched by B's overload; B shed typed\n";
    return 0;
}
