/**
 * @file
 * Policy comparison on the LSTM workload: run every selection policy on
 * the same federated next-character-prediction job and compare energy,
 * convergence, and the selection mix each policy settles on. This is the
 * "which scheduler should I deploy?" decision a practitioner would make
 * with this library.
 */
#include <iostream>

#include "harness/oracle_search.h"
#include "util/table.h"

using namespace autofl;

int
main()
{
    ExperimentConfig cfg;
    cfg.workload = Workload::LstmShakespeare;
    cfg.setting = ParamSetting::S3;
    cfg.variance = VarianceScenario::Interference;
    cfg.max_rounds = 60;
    cfg.seed = 17;

    print_banner(std::cout,
                 "Policy comparison: LSTM-Shakespeare under on-device "
                 "interference (S3)");
    TextTable t;
    t.set_header({"policy", "conv rounds", "time-to-acc (s)",
                  "energy-to-acc (J)", "final acc (%)", "avg round (s)",
                  "mix H/M/L (%)"});

    for (PolicyKind kind : {PolicyKind::FedAvgRandom, PolicyKind::Power,
                            PolicyKind::Performance,
                            PolicyKind::OracleParticipant,
                            PolicyKind::AutoFl, PolicyKind::OracleFl}) {
        ExperimentConfig run_cfg = cfg;
        run_cfg.policy = kind;
        if (kind == PolicyKind::OracleParticipant ||
            kind == PolicyKind::OracleFl) {
            auto part = search_oracle_participant(run_cfg);
            run_cfg.oracle_spec =
                kind == PolicyKind::OracleFl ?
                    search_oracle_fl(run_cfg, part.spec).spec : part.spec;
        }
        auto res = run_experiment(run_cfg);
        auto mix = res.tier_mix();
        t.add_row({res.policy_name,
                   res.converged() ? std::to_string(res.rounds_to_target) :
                                     "no-conv",
                   res.converged() ? TextTable::num(res.time_to_target_s, 1) :
                                     "-",
                   res.converged() ?
                       TextTable::num(res.energy_to_target_j, 0) : "-",
                   TextTable::num(res.final_accuracy * 100, 1),
                   TextTable::num(res.avg_round_s(), 2),
                   TextTable::num(mix[0] * 100, 0) + "/" +
                       TextTable::num(mix[1] * 100, 0) + "/" +
                       TextTable::num(mix[2] * 100, 0)});
    }
    t.render(std::cout);
    return 0;
}
