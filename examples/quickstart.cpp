/**
 * @file
 * Quickstart: run AutoFL against the FedAvg-Random baseline on the
 * CNN-MNIST workload and print per-round progress plus the final
 * energy-efficiency comparison.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <iostream>

#include "harness/experiment.h"
#include "util/table.h"

using namespace autofl;

namespace {

void
print_run(const ExperimentResult &res)
{
    std::cout << "policy: " << res.policy_name << "\n";
    for (const auto &r : res.rounds) {
        if (r.round % 5 == 0 || &r == &res.rounds.back()) {
            std::cout << "  round " << r.round
                      << "  acc=" << TextTable::num(r.accuracy * 100, 1)
                      << "%  round_time=" << TextTable::num(r.round_s, 2)
                      << "s  fleet_energy=" <<
                TextTable::num(r.energy_global_j, 1)
                      << "J  mix(H/M/L)=" << r.selected_high << "/"
                      << r.selected_mid << "/" << r.selected_low << "\n";
        }
    }
    std::cout << "  converged: "
              << (res.converged() ?
                      ("round " + std::to_string(res.rounds_to_target)) :
                      std::string("no"))
              << "  final_acc=" << TextTable::num(res.final_accuracy * 100, 1)
              << "%  total_energy=" << TextTable::num(res.total_energy_j, 0)
              << "J  sim_time=" << TextTable::num(res.total_time_s, 1)
              << "s\n\n";
}

} // namespace

int
main()
{
    std::cout << "AutoFL quickstart: CNN-MNIST, setting S3 (B=16, E=5, "
                 "K=20), 200-device fleet\n\n";

    ExperimentConfig cfg;
    cfg.workload = Workload::CnnMnist;
    cfg.setting = ParamSetting::S3;
    cfg.variance = VarianceScenario::Combined;
    cfg.max_rounds = 60;
    cfg.seed = 3;

    cfg.policy = PolicyKind::FedAvgRandom;
    ExperimentResult baseline = run_experiment(cfg);
    print_run(baseline);

    cfg.policy = PolicyKind::AutoFl;
    ExperimentResult autofl_res = run_experiment(cfg);
    print_run(autofl_res);

    TextTable t;
    t.set_header({"metric", "FedAvg-Random", "AutoFL", "AutoFL gain"});
    auto ratio = [](double a, double b) {
        return b > 0.0 ? TextTable::num(a / b, 2) + "x" : "n/a";
    };
    t.add_row({"global PPW (work/J)",
               TextTable::num(baseline.ppw_round(), 0),
               TextTable::num(autofl_res.ppw_round(), 0),
               ratio(autofl_res.ppw_round(), baseline.ppw_round())});
    t.add_row({"local PPW (work/J)",
               TextTable::num(baseline.ppw_local(), 0),
               TextTable::num(autofl_res.ppw_local(), 0),
               ratio(autofl_res.ppw_local(), baseline.ppw_local())});
    t.add_row({"avg round time (s)",
               TextTable::num(baseline.avg_round_s(), 2),
               TextTable::num(autofl_res.avg_round_s(), 2),
               ratio(baseline.avg_round_s(), autofl_res.avg_round_s())});
    t.render(std::cout);
    return 0;
}
